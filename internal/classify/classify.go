// Package classify implements the §4.2 campaign-identification pipeline: a
// bag-of-words model over HTML tag–attribute–value triplets, multiclass
// L1-regularised logistic regression (one-vs-rest, trained with proximal
// gradient descent — the same model family the paper fits with LIBLINEAR),
// k-fold cross-validation, and the iterative label-refinement loop that
// grows the training set from high-confidence predictions verified against
// an oracle.
package classify

import (
	"math"
	"sort"

	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// Doc is one training or evaluation document: its extracted features and
// (for labeled docs) its campaign label.
type Doc struct {
	Features []string
	Label    string
}

// Options configures training.
type Options struct {
	// Lambda is the regularisation strength.
	Lambda float64
	// Reg selects the penalty: L1 (sparse, interpretable — the paper's
	// choice), L2, or none (the abl-l1 ablation).
	Reg Regularizer
	// LearningRate and Epochs drive the proximal gradient loop.
	LearningRate float64
	Epochs       int
	// Workers bounds the per-class training parallelism (0 = serial).
	Workers int
	// EpochCounter, when non-nil, accumulates gradient epochs actually run
	// (one bump of Epochs per binary subproblem). Telemetry only: training
	// never reads it.
	EpochCounter *telemetry.Counter
	// Pool, when non-nil, receives the per-class fan-out's accounting.
	Pool parallel.PoolObserver
}

// Regularizer selects the penalty.
type Regularizer int

// Supported penalties.
const (
	L1 Regularizer = iota
	L2
	NoReg
)

// String implements fmt.Stringer.
func (r Regularizer) String() string {
	switch r {
	case L1:
		return "l1"
	case L2:
		return "l2"
	default:
		return "none"
	}
}

// DefaultOptions returns the study configuration.
func DefaultOptions() Options {
	return Options{Lambda: 0.004, Reg: L1, LearningRate: 0.6, Epochs: 60, Workers: 8}
}

// Vocab maps feature strings to dense indices.
type Vocab struct {
	index map[string]int
	terms []string
}

// BuildVocab collects the union of features across docs.
func BuildVocab(docs []Doc) *Vocab {
	v := &Vocab{index: make(map[string]int)}
	for _, d := range docs {
		for _, f := range d.Features {
			if _, ok := v.index[f]; !ok {
				v.index[f] = len(v.terms)
				v.terms = append(v.terms, f)
			}
		}
	}
	return v
}

// Size returns the vocabulary size.
func (v *Vocab) Size() int { return len(v.terms) }

// Term returns the feature string at index i.
func (v *Vocab) Term(i int) string { return v.terms[i] }

// vector converts features into sorted unique indices (binary bag of
// words); unknown features are dropped.
func (v *Vocab) vector(features []string) []int {
	seen := make(map[int]struct{}, len(features))
	for _, f := range features {
		if idx, ok := v.index[f]; ok {
			seen[idx] = struct{}{}
		}
	}
	out := make([]int, 0, len(seen))
	for idx := range seen {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// Model is a trained one-vs-rest multiclass classifier.
type Model struct {
	Classes []string
	Vocab   *Vocab
	weights [][]float64 // per class, len == Vocab.Size()
	bias    []float64
}

// Train fits the model on labeled docs.
func Train(docs []Doc, opts Options) *Model {
	classSet := make(map[string]struct{})
	for _, d := range docs {
		classSet[d.Label] = struct{}{}
	}
	classes := make([]string, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Strings(classes)

	vocab := BuildVocab(docs)
	X := make([][]int, len(docs))
	for i, d := range docs {
		X[i] = vocab.vector(d.Features)
	}
	m := &Model{
		Classes: classes,
		Vocab:   vocab,
		weights: make([][]float64, len(classes)),
		bias:    make([]float64, len(classes)),
	}
	// One-vs-rest subproblems are independent; each writes only its own
	// class slot, so the fan-out is deterministic at any worker count.
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	parallel.ForEachObserved(workers, len(classes), func(ci int) {
		class := classes[ci]
		y := make([]float64, len(docs))
		for i, d := range docs {
			if d.Label == class {
				y[i] = 1
			}
		}
		w, b := trainBinary(X, y, vocab.Size(), opts)
		m.weights[ci] = w
		m.bias[ci] = b
	}, opts.Pool)
	return m
}

// trainBinary fits one binary logistic regression with full-batch proximal
// gradient descent (ISTA for L1). Positive examples are up-weighted to
// balance the heavy negative skew each one-vs-rest subproblem has with 52
// classes.
func trainBinary(X [][]int, y []float64, dim int, opts Options) ([]float64, float64) {
	w := make([]float64, dim)
	var b float64
	n := float64(len(X))
	if n == 0 {
		return w, b
	}
	var npos float64
	for _, v := range y {
		npos += v
	}
	posWeight := 1.0
	if npos > 0 {
		posWeight = (n - npos) / npos
		if posWeight > 60 {
			posWeight = 60
		}
		if posWeight < 1 {
			posWeight = 1
		}
	}
	grad := make([]float64, dim)
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		for i := range grad {
			grad[i] = 0
		}
		var gradB float64
		for i, xi := range X {
			z := b
			for _, j := range xi {
				z += w[j]
			}
			p := sigmoid(z)
			g := p - y[i]
			if y[i] > 0 {
				g *= posWeight
			}
			for _, j := range xi {
				grad[j] += g
			}
			gradB += g
		}
		lr := opts.LearningRate / (1 + 0.03*float64(epoch))
		for j := range w {
			if grad[j] != 0 {
				w[j] -= lr * grad[j] / n
			}
			switch opts.Reg {
			case L1:
				// Soft threshold (proximal step for the L1 penalty).
				t := lr * opts.Lambda
				switch {
				case w[j] > t:
					w[j] -= t
				case w[j] < -t:
					w[j] += t
				default:
					w[j] = 0
				}
			case L2:
				w[j] *= 1 - lr*opts.Lambda
			}
		}
		b -= lr * gradB / n
	}
	opts.EpochCounter.Add(int64(opts.Epochs))
	return w, b
}

func sigmoid(z float64) float64 {
	if z < -35 {
		return 0
	}
	if z > 35 {
		return 1
	}
	return 1 / (1 + math.Exp(-z))
}

// Prediction is a scored class assignment.
type Prediction struct {
	Label string
	Prob  float64
}

// Predict returns the most likely campaign for a document's features,
// with the (one-vs-rest, renormalised) probability attached.
func (m *Model) Predict(features []string) Prediction {
	xi := m.Vocab.vector(features)
	best, bestScore := "", math.Inf(-1)
	var total float64
	probs := make([]float64, len(m.Classes))
	for ci := range m.Classes {
		z := m.bias[ci]
		w := m.weights[ci]
		for _, j := range xi {
			z += w[j]
		}
		p := sigmoid(z)
		probs[ci] = p
		total += p
		if p > bestScore {
			bestScore = p
			best = m.Classes[ci]
		}
	}
	conf := bestScore
	if total > 0 {
		conf = bestScore / total
	}
	return Prediction{Label: best, Prob: conf}
}

// Sparsity reports the nonzero and total weight counts — the
// interpretability property the paper uses L1 for.
func (m *Model) Sparsity() (nonzero, total int) {
	for _, w := range m.weights {
		for _, x := range w {
			if x != 0 {
				nonzero++
			}
			total++
		}
	}
	return nonzero, total
}

// TopFeatures returns the k most strongly weighted features for a class —
// the campaign's learned signature.
func (m *Model) TopFeatures(class string, k int) []string {
	ci := -1
	for i, c := range m.Classes {
		if c == class {
			ci = i
		}
	}
	if ci < 0 {
		return nil
	}
	type fw struct {
		j int
		w float64
	}
	var all []fw
	for j, w := range m.weights[ci] {
		if w > 0 {
			all = append(all, fw{j, w})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].w != all[b].w {
			return all[a].w > all[b].w
		}
		return all[a].j < all[b].j
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = m.Vocab.Term(all[i].j)
	}
	return out
}

// CrossValidate runs k-fold cross-validation and returns mean held-out
// accuracy. Folds are assigned round-robin after a deterministic ordering,
// matching the paper's 10-fold protocol.
func CrossValidate(docs []Doc, k int, opts Options) float64 {
	if k < 2 || len(docs) < k {
		return 0
	}
	var correct, totalN int
	for fold := 0; fold < k; fold++ {
		var train, test []Doc
		for i, d := range docs {
			if i%k == fold {
				test = append(test, d)
			} else {
				train = append(train, d)
			}
		}
		m := Train(train, opts)
		for _, d := range test {
			if m.Predict(d.Features).Label == d.Label {
				correct++
			}
			totalN++
		}
	}
	return float64(correct) / float64(totalN)
}

// RefineResult summarises one round of the §4.2.3 human-machine loop.
type RefineResult struct {
	Round     int
	Labeled   int // training-set size after the round
	Accepted  int // verified predictions promoted to labels
	Rejected  int // high-confidence predictions the oracle rejected
	CVAcc     float64
	ClassesIn int
}

// Refine grows a labeled seed set by classifying unlabeled docs, taking the
// topK most confident predictions per round, and asking the verify oracle
// (standing in for the analyst checking shared infrastructure) whether each
// predicted label is right. Verified docs join the training set; the model
// is retrained each round.
func Refine(seed []Doc, unlabeled []Doc, verify func(docIdx int, predicted string) bool,
	rounds, topK int, opts Options) (*Model, []RefineResult) {

	labeled := append([]Doc(nil), seed...)
	taken := make([]bool, len(unlabeled))
	var history []RefineResult
	var model *Model
	for round := 0; round < rounds; round++ {
		model = Train(labeled, opts)
		type cand struct {
			idx  int
			pred Prediction
		}
		var cands []cand
		for i, d := range unlabeled {
			if taken[i] {
				continue
			}
			cands = append(cands, cand{i, model.Predict(d.Features)})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].pred.Prob != cands[b].pred.Prob {
				return cands[a].pred.Prob > cands[b].pred.Prob
			}
			return cands[a].idx < cands[b].idx
		})
		if topK < len(cands) {
			cands = cands[:topK]
		}
		res := RefineResult{Round: round}
		for _, c := range cands {
			taken[c.idx] = true
			if verify(c.idx, c.pred.Label) {
				labeled = append(labeled, Doc{
					Features: unlabeled[c.idx].Features,
					Label:    c.pred.Label,
				})
				res.Accepted++
			} else {
				res.Rejected++
			}
		}
		res.Labeled = len(labeled)
		classSet := map[string]struct{}{}
		for _, d := range labeled {
			classSet[d.Label] = struct{}{}
		}
		res.ClassesIn = len(classSet)
		history = append(history, res)
		if res.Accepted == 0 && res.Rejected == 0 {
			break
		}
	}
	model = Train(labeled, opts)
	return model, history
}
