package htmlgen

import (
	"strings"
	"testing"

	"repro/internal/brands"
	"repro/internal/campaign"
	"repro/internal/htmlparse"
	"repro/internal/jsmini"
	"repro/internal/rng"
	"repro/internal/simclock"
)

func testWorld(t *testing.T) (*Generator, []*campaign.Deployment) {
	t.Helper()
	r := rng.New(7)
	specs := campaign.Roster(simclock.StudyWindow())
	deps := campaign.DeployAll(r.Sub("deploy"), specs, 0.02)
	return New(r), deps
}

func findDep(deps []*campaign.Deployment, name string) *campaign.Deployment {
	for _, d := range deps {
		if d.Spec.Name == name {
			return d
		}
	}
	return nil
}

func TestStorePageHasCartAndCheckout(t *testing.T) {
	g, deps := testWorld(t)
	for _, dep := range deps[:10] {
		st := dep.Stores[0]
		page := g.StorePage(st, st.Domains[0])
		low := strings.ToLower(page)
		if !strings.Contains(low, "cart") || !strings.Contains(low, "checkout") {
			t.Fatalf("%s store page lacks cart/checkout markers", dep.Spec.Name)
		}
	}
}

func TestStorePageDeterministic(t *testing.T) {
	g, deps := testWorld(t)
	st := deps[0].Stores[0]
	a := g.StorePage(st, st.Domains[0])
	b := g.StorePage(st, st.Domains[0])
	if a != b {
		t.Fatal("store page not deterministic")
	}
}

func TestStorePageCarriesCampaignSignature(t *testing.T) {
	g, deps := testWorld(t)
	msv := findDep(deps, "MSVALIDATE")
	page := g.StorePage(msv.Stores[0], msv.Stores[0].Domains[0])
	if !strings.Contains(page, "msvalidate.01") {
		t.Fatal("MSVALIDATE store page lacks its meta marker")
	}
	key := findDep(deps, "KEY")
	kpage := g.StorePage(key.Stores[0], key.Stores[0].Domains[0])
	if !strings.Contains(kpage, "kit:key-v3") {
		t.Fatal("KEY store page lacks its comment marker")
	}
	if !strings.Contains(kpage, "cnzz.com/stat.php?id=3301127") {
		t.Fatal("KEY store page lacks its analytics id")
	}
}

func TestStorePageExposesMerchantID(t *testing.T) {
	g, deps := testWorld(t)
	page := g.StorePage(deps[0].Stores[0], deps[0].Stores[0].Domains[0])
	if !strings.Contains(page, "merchant_id") {
		t.Fatal("store page must expose a payment merchant id (§3.1.2)")
	}
}

func TestStorePageParses(t *testing.T) {
	g, deps := testWorld(t)
	for _, dep := range deps {
		st := dep.Stores[0]
		page := g.StorePage(st, st.Domains[0])
		root := htmlparse.Parse(page)
		if root.Find("body") == nil || root.Find("title") == nil {
			t.Fatalf("%s store page structure broken", dep.Spec.Name)
		}
	}
}

func TestStorePagesDistinguishableAcrossCampaigns(t *testing.T) {
	// Different campaigns' templates must differ in their triplet features,
	// otherwise the classifier has nothing to learn.
	g, deps := testWorld(t)
	a := g.StorePage(findDep(deps, "KEY").Stores[0], "x.com")
	b := g.StorePage(findDep(deps, "BIGLOVE").Stores[0], "y.com")
	ta := map[string]struct{}{}
	for _, f := range htmlparse.Triplets(a) {
		ta[f] = struct{}{}
	}
	tb := map[string]struct{}{}
	for _, f := range htmlparse.Triplets(b) {
		tb[f] = struct{}{}
	}
	if sim := htmlparse.Jaccard(ta, tb); sim > 0.8 {
		t.Fatalf("KEY and BIGLOVE templates too similar: jaccard = %v", sim)
	}
}

func TestLocaleBanner(t *testing.T) {
	g, deps := testWorld(t)
	php := findDep(deps, "PHP?P=")
	ukPage := g.StorePage(php.Stores[0], php.Stores[0].Domains[0])
	if !strings.Contains(ukPage, "UK Official Outlet") {
		t.Fatal("UK store must carry its localisation banner")
	}
}

func TestDoorwayCrawlerPageStuffsKeywords(t *testing.T) {
	g, deps := testWorld(t)
	dep := findDep(deps, "KEY")
	dw := dep.Doorways[0]
	terms := []string{"cheap beats by dre", "beats by dre outlet", "discount beats"}
	page := g.DoorwayCrawlerPage(dw, terms)
	for _, term := range terms {
		if !strings.Contains(page, term) {
			t.Fatalf("doorway page missing term %q", term)
		}
	}
	if !strings.Contains(page, "key=") {
		t.Fatal("KEY doorway must use its URL token in links")
	}
}

func TestDoorwayPathPatterns(t *testing.T) {
	sigEq := campaign.Signature{URLToken: "php?p="}
	if p := DoorwayPath(sigEq, "cheap uggs"); p != "/php?p=cheap+uggs" {
		t.Fatalf("php?p= path = %q", p)
	}
	sigTok := campaign.Signature{URLToken: "moklele"}
	if p := DoorwayPath(sigTok, "lv bags"); p != "/moklele/?p=lv+bags" {
		t.Fatalf("token path = %q", p)
	}
	if p := DoorwayPath(campaign.Signature{}, "x y"); p != "/?q=x+y" {
		t.Fatalf("default path = %q", p)
	}
}

func TestCompromisedOriginalPageIsBenign(t *testing.T) {
	g, _ := testWorld(t)
	page := g.CompromisedOriginalPage("gardenclub1.org")
	low := strings.ToLower(page)
	for _, marker := range []string{"cart", "checkout", "iframe", "merchant"} {
		if strings.Contains(low, marker) {
			t.Fatalf("original page must not contain %q", marker)
		}
	}
	if page != g.CompromisedOriginalPage("gardenclub1.org") {
		t.Fatal("original page must be deterministic per domain")
	}
}

func TestBenignResultPage(t *testing.T) {
	g, _ := testWorld(t)
	page := g.BenignResultPage("reviews.example.org", "cheap uggs")
	if !strings.Contains(page, "cheap uggs") {
		t.Fatal("benign page must mention the term")
	}
	if strings.Contains(strings.ToLower(page), "checkout") {
		t.Fatal("benign page must not look like a store")
	}
}

func TestSeizureNotice(t *testing.T) {
	g, _ := testWorld(t)
	page := g.SeizureNotice("Greer, Burns & Crain", "14-cv-01234",
		[]string{"cheapuggs1.com", "cheapuggs2.com"})
	if !strings.Contains(page, "14-cv-01234") {
		t.Fatal("notice must embed the case id")
	}
	if !strings.Contains(page, "cheapuggs2.com") {
		t.Fatal("notice must list the co-seized domains")
	}
	if !strings.Contains(page, "seized") {
		t.Fatal("notice must say seized")
	}
}

func TestRedirectScriptExecutes(t *testing.T) {
	g, _ := testWorld(t)
	for i := 0; i < 40; i++ {
		id := strings.Repeat("d", i%5+1) + string(rune('a'+i%26))
		src := g.RedirectScript(id, "http://store.example.net/")
		pg := &jsmini.Page{URL: "http://door/", Referrer: "http://www.google.com/search?q=x"}
		if err := jsmini.Exec(src, pg); err != nil {
			t.Fatalf("variant %d failed: %v\n%s", i, err, src)
		}
		if pg.Redirect != "http://store.example.net/" {
			t.Fatalf("variant %d: search visitor not redirected\n%s", i, src)
		}
		direct := &jsmini.Page{URL: "http://door/", Referrer: ""}
		if err := jsmini.Exec(src, direct); err != nil {
			t.Fatal(err)
		}
		if direct.Redirect != "" {
			t.Fatalf("variant %d: direct visitor redirected", i)
		}
	}
}

func TestIframeScriptExecutes(t *testing.T) {
	g, _ := testWorld(t)
	for i := 0; i < 40; i++ {
		id := strings.Repeat("f", i%4+1) + string(rune('a'+i%26))
		src := g.IframeScript(id, "http://store.example.net/")
		pg := &jsmini.Page{URL: "http://door/"}
		if err := jsmini.Exec(src, pg); err != nil {
			t.Fatalf("variant %d failed: %v\n%s", i, err, src)
		}
		fullPage := false
		for _, e := range pg.AppendedElements() {
			if e.Tag == "iframe" && e.Attrs["src"] == "http://store.example.net/" {
				fullPage = true
			}
		}
		for _, w := range pg.Writes {
			if strings.Contains(w, "iframe") && strings.Contains(w, "http://store.example.net/") {
				fullPage = true
			}
		}
		if !fullPage {
			t.Fatalf("variant %d produced no full-page iframe\n%s", i, src)
		}
	}
}

func TestInjectScriptPlacement(t *testing.T) {
	out := injectScript("<html><body><p>x</p></body></html>", "var a = 1;")
	if !strings.Contains(out, "<script") {
		t.Fatal("no script injected")
	}
	if strings.Index(out, "<script") > strings.Index(out, "</body>") {
		t.Fatal("script must come before </body>")
	}
	// No body: append.
	out2 := injectScript("<p>x</p>", "var a = 1;")
	if !strings.HasSuffix(strings.TrimSpace(out2), "</script>") {
		t.Fatalf("fallback injection broken: %q", out2)
	}
}

func TestCloakedDoorwayUserPageRendersIframe(t *testing.T) {
	g, deps := testWorld(t)
	dep := findDep(deps, "MOONKIS") // iframe-cloaking campaign
	dw := dep.Doorways[0]
	base := g.DoorwayCrawlerPage(dw, []string{"cheap beats"})
	page := g.CloakedDoorwayUserPage(base, dw.ID, "http://beatsstore.example/")
	root := htmlparse.Parse(page)
	scripts := root.Scripts()
	if len(scripts) == 0 {
		t.Fatal("no script in cloaked page")
	}
	pg := &jsmini.Page{URL: "http://" + dw.Domain + "/"}
	for _, s := range scripts {
		if err := jsmini.Exec(s, pg); err != nil {
			t.Fatalf("script failed: %v", err)
		}
	}
	found := len(pg.AppendedElements()) > 0
	for _, w := range pg.Writes {
		if strings.Contains(w, "iframe") {
			found = true
		}
	}
	if !found {
		t.Fatal("cloaked page must build an iframe when rendered")
	}
}

func TestObfuscationRoundTripsAllVariants(t *testing.T) {
	r := rng.New(99)
	target := "http://x.example/path?a=1&b=two"
	for i := 0; i < 100; i++ {
		exprSrc := obfuscate(r, target)
		src := "window.location = " + exprSrc + ";"
		pg := &jsmini.Page{URL: "http://d/"}
		if err := jsmini.Exec(src, pg); err != nil {
			t.Fatalf("obfuscation %d failed: %v\n%s", i, err, src)
		}
		if pg.Redirect != target {
			t.Fatalf("obfuscation %d round trip: got %q\n%s", i, pg.Redirect, src)
		}
	}
}

func TestVerticalsAssignBrandsToStores(t *testing.T) {
	_, deps := testWorld(t)
	for _, dep := range deps {
		for _, st := range dep.Stores {
			if st.Brand == "" {
				t.Fatalf("store %s has no brand", st.ID)
			}
			if st.Vertical < 0 || st.Vertical >= brands.NumVerticals {
				t.Fatalf("store %s has bad vertical", st.ID)
			}
		}
	}
}

func BenchmarkStorePage(b *testing.B) {
	r := rng.New(7)
	specs := campaign.Roster(simclock.StudyWindow())
	deps := campaign.DeployAll(r.Sub("deploy"), specs, 0.02)
	g := New(r)
	st := deps[0].Stores[0]
	for i := 0; i < b.N; i++ {
		g.StorePage(st, st.Domains[0])
	}
}
