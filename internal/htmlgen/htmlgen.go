// Package htmlgen synthesises the HTML the simulated web serves: counterfeit
// storefronts built from shared e-commerce templates plus per-campaign
// signature markers, keyword-stuffed doorway pages, compromised sites'
// original content, benign search results, seizure notice pages, and the
// obfuscated JavaScript cloaking payloads (redirect and full-page iframe)
// that the jsmini interpreter can execute.
//
// Generation is deterministic per (campaign, store/doorway, domain): the
// crawler may fetch the same URL many times and must see a stable document.
//
// The package is a hot path of the observe phase — every crawler fetch ends
// here — so it is built around reuse: documents are memoised in a sharded
// map whose lookup takes a []byte key, and both the key and the document
// under construction live in a pooled per-worker scratch object. The steady
// state (memo hit) performs zero allocations; a miss allocates only the
// interned key and document.
package htmlgen

import (
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/campaign"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/shard"
)

// Generator produces documents for one simulated world. Documents are
// deterministic per identity, so the generator memoises them: the crawler
// fetches the same URLs daily and must not pay generation cost each time.
type Generator struct {
	root  *rng.Source
	cache shard.Map[string]   // memo key -> document
	plats shard.Map[Platform] // store deployment ID -> platform

	scratch *parallel.Scratch[genScratch]
	// pageHint tracks the largest document built so far; fresh scratch
	// objects size their buffers from it so they start at steady-state
	// capacity instead of growing through reallocation.
	pageHint atomic.Int64
}

// genScratch is the per-worker scratch state: the memo key and the document
// under construction share reused buffers across calls.
type genScratch struct {
	key []byte
	buf []byte
}

// New returns a Generator deriving all randomness from r.
func New(r *rng.Source) *Generator {
	g := &Generator{root: r.Sub("htmlgen")}
	g.pageHint.Store(4 << 10)
	g.scratch = parallel.NewScratch(func() *genScratch {
		return &genScratch{
			key: make([]byte, 0, 160),
			buf: make([]byte, 0, g.pageHint.Load()),
		}
	})
	return g
}

// internPage stores the document built in s under the key built in s,
// returning the interned copy (first writer wins, and builds are
// deterministic per key, so racing copies are byte-identical).
func (g *Generator) internPage(s *genScratch) string {
	page, _ := g.cache.LoadOrStore(string(s.key), string(s.buf))
	g.notePage(len(s.buf))
	g.scratch.Put(s)
	return page
}

func (g *Generator) notePage(n int) {
	for {
		cur := g.pageHint.Load()
		if int64(n) <= cur || g.pageHint.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// rngFor yields the stable substream for one document identity.
func (g *Generator) rngFor(kind, id string) *rng.Source {
	return g.root.Sub(kind + "/" + id)
}

var fillerWords = []string{
	"quality", "fashion", "style", "classic", "genuine", "leather",
	"premium", "design", "collection", "season", "trend", "exclusive",
	"limited", "edition", "delivery", "worldwide", "guarantee", "original",
	"luxury", "authentic", "bestseller", "popular", "comfort", "elegant",
}

var productNouns = []string{
	"Handbag", "Tote", "Wallet", "Boots", "Sneakers", "Jacket", "Coat",
	"Watch", "Sunglasses", "Scarf", "Belt", "Headphones", "Polo Shirt",
	"Hoodie", "Slippers", "Backpack", "Bracelet", "Ring", "Earbuds",
}

// Platform is an e-commerce stack whose cookies/markup counterfeit stores
// reuse (§4.1.3 names Zen Cart and Magento; Realypay/Mallpayment
// processors; Ajstat/CNZZ analytics).
type Platform struct {
	Name      string
	Generator string // meta generator string
	CartPath  string
	Cookie    string // session cookie name the detection heuristic keys on
}

var platforms = []Platform{
	{"zencart", "shopping cart program by Zen Cart", "/index.php?main_page=shopping_cart", "zenid"},
	{"magento", "Magento, Varien, E-commerce", "/checkout/cart/", "frontend"},
}

// PlatformFor returns the e-commerce platform a store's pages are built on.
// It is derived from the same substream as StorePage, so markup and cookies
// always agree. The result is memoised per deployment: store sites consult
// it on every fetch to emit session cookies.
func (g *Generator) PlatformFor(sd *campaign.StoreDeployment) Platform {
	s := g.scratch.Get()
	s.key = append(s.key[:0], "plat/"...)
	s.key = append(s.key, sd.ID...)
	if p, ok := g.plats.GetBytes(s.key); ok {
		g.scratch.Put(s)
		return p
	}
	r := g.rngFor("store", sd.ID)
	p := platforms[r.Intn(len(platforms))]
	g.plats.Set(string(s.key), p)
	g.scratch.Put(s)
	return p
}

var processors = []string{"realypay", "mallpayment", "globalbill"}

// appendSentence appends a deterministic pseudo-sentence of n filler words,
// consuming one draw per word exactly like its strings.Join predecessor.
func appendSentence(dst []byte, r *rng.Source, n int) []byte {
	for i := 0; i < n; i++ {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = append(dst, rng.Pick(r, fillerWords)...)
	}
	return dst
}

func appendInt(dst []byte, n int) []byte {
	return strconv.AppendInt(dst, int64(n), 10)
}

// StorePage renders a counterfeit storefront's landing page as served on
// the given domain. The document mixes three layers of signal, which is
// what makes campaign classification non-trivial but learnable:
//
//   - platform markup shared across campaigns (Zen Cart / Magento classes,
//     cart and checkout affordances, payment-processor snippets),
//   - the campaign's in-house template signature (CSS prefix, analytics id,
//     comment markers, chat widget, meta markers),
//   - per-store noise (product mix, filler copy).
func (g *Generator) StorePage(sd *campaign.StoreDeployment, domain string) string {
	s := g.scratch.Get()
	s.key = append(s.key[:0], "store/"...)
	s.key = append(s.key, sd.ID...)
	s.key = append(s.key, '/')
	s.key = append(s.key, domain...)
	s.key = append(s.key, '/')
	s.key = append(s.key, sd.Campaign.Signature.TemplatePrefix...)
	if page, ok := g.cache.GetBytes(s.key); ok {
		g.scratch.Put(s)
		return page
	}
	s.buf = g.appendStorePage(s.buf[:0], sd, domain)
	return g.internPage(s)
}

func (g *Generator) appendStorePage(b []byte, sd *campaign.StoreDeployment, domain string) []byte {
	r := g.rngFor("store", sd.ID)
	sig := sd.Campaign.Signature
	plat := platforms[r.Intn(len(platforms))]
	proc := rng.Pick(r, processors)
	pfx := sig.TemplatePrefix
	if pfx == "" {
		pfx = "shop"
	}

	b = append(b, "<!DOCTYPE html>\n<html>\n<head>\n"...)
	b = append(b, "<title>"...)
	b = append(b, sd.Brand...)
	b = append(b, ' ')
	b = append(b, rng.Pick(r, productNouns)...)
	b = append(b, " Outlet - Official Online Store</title>\n"...)
	b = append(b, "<meta name=\"generator\" content=\""...)
	b = append(b, plat.Generator...)
	b = append(b, "\">\n"...)
	if sig.MetaMarker != "" {
		b = append(b, "<meta name=\""...)
		b = append(b, sig.MetaMarker...)
		b = append(b, "\" content=\""...)
		b = appendToken(b, r, 16)
		b = append(b, "\">\n"...)
	}
	b = append(b, "<meta name=\"description\" content=\""...)
	b = append(b, sd.Brand...)
	b = append(b, ' ')
	b = appendSentence(b, r, 8)
	b = append(b, "\">\n"...)
	b = append(b, "<link rel=\"stylesheet\" href=\"/skin/"...)
	b = append(b, pfx...)
	b = append(b, "/base.css\">\n"...)
	if sig.CommentMarker != "" {
		b = append(b, "<!-- "...)
		b = append(b, sig.CommentMarker...)
		b = append(b, " -->\n"...)
	}
	b = append(b, "</head>\n<body class=\""...)
	b = append(b, pfx...)
	b = append(b, "-body\">\n"...)
	b = append(b, "<div class=\""...)
	b = append(b, pfx...)
	b = append(b, "-header\"><h1>"...)
	b = append(b, sd.Brand...)
	b = append(b, ' ')
	b = append(b, localeBanner(sd.Locale)...)
	b = append(b, "</h1>"...)
	b = append(b, "<div class=\""...)
	b = append(b, pfx...)
	b = append(b, "-nav\"><a href=\"/\">Home</a> <a href=\""...)
	b = append(b, plat.CartPath...)
	b = append(b, "\">Cart</a> <a href=\"/checkout\">Checkout</a> <a href=\"/track\">Track Order</a></div></div>\n"...)

	nProducts := 6 + r.Intn(6)
	b = append(b, "<div class=\""...)
	b = append(b, pfx...)
	b = append(b, "-grid\">\n"...)
	for i := 0; i < nProducts; i++ {
		noun := rng.Pick(r, productNouns)
		price := 79 + r.Intn(300)
		b = append(b, "<div class=\""...)
		b = append(b, pfx...)
		b = append(b, "-product\"><a href=\"/item/"...)
		b = appendInt(b, i)
		b = append(b, "\">"...)
		b = append(b, sd.Brand...)
		b = append(b, ' ')
		b = append(b, rng.Pick(r, fillerWords)...)
		b = append(b, ' ')
		b = append(b, noun...)
		b = append(b, "</a><span class=\"price\">$"...)
		b = appendInt(b, price)
		b = append(b, ".00</span><a class=\"btn\" href=\"/cart/add/"...)
		b = appendInt(b, i)
		b = append(b, "\">Add to Cart</a></div>\n"...)
	}
	b = append(b, "</div>\n"...)
	b = append(b, "<p class=\""...)
	b = append(b, pfx...)
	b = append(b, "-copy\">"...)
	b = appendSentence(b, r, 18)
	b = append(b, "</p>\n"...)

	// Payment processor: the merchant id exposed in page source is how the
	// paper confirmed stores engage processors directly (§3.1.2).
	b = append(b, "<div class=\"payment\"><img src=\"https://pay."...)
	b = append(b, proc...)
	b = append(b, ".com/badge.png\" alt=\""...)
	b = append(b, proc...)
	b = append(b, "\"><input type=\"hidden\" name=\"merchant_id\" value=\""...)
	b = append(b, proc...)
	b = append(b, '-')
	b = appendMerchantID(b, merchantID(r, sd.ID))
	b = append(b, "\"></div>\n"...)
	if sig.AnalyticsID != "" {
		b = appendAnalyticsSnippet(b, sig.AnalyticsID)
	}
	if sig.ChatWidget != "" {
		b = append(b, "<script src=\"/chat/"...)
		b = append(b, sig.ChatWidget...)
		b = append(b, "/loader.js\"></script>\n"...)
	}
	if sig.ScriptLibrary != "" {
		b = append(b, "<script src=\"/js/"...)
		b = append(b, sig.ScriptLibrary...)
		b = append(b, "\"></script>\n"...)
	}
	b = append(b, "<div class=\"footer\">&copy; 2014 "...)
	b = append(b, domain...)
	b = append(b, ". "...)
	b = appendSentence(b, r, 6)
	b = append(b, "</div>\n"...)
	b = append(b, "</body>\n</html>\n"...)
	return b
}

func localeBanner(locale string) string {
	switch locale {
	case "uk":
		return "UK Official Outlet"
	case "de":
		return "Deutschland Online Shop"
	case "jp":
		return "日本公式オンラインストア"
	case "it":
		return "Negozio Online Italia"
	case "fr":
		return "Boutique en Ligne France"
	case "au":
		return "Australia Online Store"
	default:
		return "Factory Outlet Online"
	}
}

func merchantID(r *rng.Source, id string) int {
	var h int
	for _, c := range id {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return (h + r.Intn(1000)) % 1000000
}

// appendMerchantID renders the merchant number zero-padded to six digits
// (the %06d of the original template).
func appendMerchantID(dst []byte, m int) []byte {
	var tmp [8]byte
	s := strconv.AppendInt(tmp[:0], int64(m), 10)
	for i := len(s); i < 6; i++ {
		dst = append(dst, '0')
	}
	return append(dst, s...)
}

// appendToken appends the first n hex digits of a 16-digit token, always
// consuming all 16 draws so truncated and full tokens leave the substream
// in the same state.
func appendToken(dst []byte, r *rng.Source, n int) []byte {
	const hexdigits = "0123456789ABCDEF"
	var tok [16]byte
	for i := range tok {
		tok[i] = hexdigits[r.Intn(16)]
	}
	return append(dst, tok[:n]...)
}

// appendAnalyticsSnippet renders a web-analytics include whose account id is
// a strong campaign fingerprint (the paper lists 51.la, cnzz.com and
// statcounter as validation signals).
func appendAnalyticsSnippet(dst []byte, id string) []byte {
	switch {
	case strings.HasPrefix(id, "cnzz-"):
		dst = append(dst, "<script src=\"https://s4.cnzz.com/stat.php?id="...)
		dst = append(dst, id[5:]...)
		return append(dst, "\"></script>\n"...)
	case strings.HasPrefix(id, "51la-"):
		dst = append(dst, "<script src=\"https://js.users.51.la/"...)
		dst = append(dst, id[5:]...)
		return append(dst, ".js\"></script>\n"...)
	default:
		dst = append(dst, "<script src=\"https://analytics.example/"...)
		dst = append(dst, id...)
		return append(dst, ".js\"></script>\n"...)
	}
}

// DoorwayCrawlerPage renders what a search-engine crawler receives from a
// doorway: keyword-stuffed content crafted to rank for the vertical's
// terms, carrying the campaign's kit markers. The memo key covers the
// doorway identity and the full term list, assembled in one pass over the
// reused scratch buffer.
func (g *Generator) DoorwayCrawlerPage(dw *campaign.Doorway, terms []string) string {
	s := g.scratch.Get()
	s.key = append(s.key[:0], "door/"...)
	s.key = append(s.key, dw.ID...)
	for _, t := range terms {
		s.key = append(s.key, '|')
		s.key = append(s.key, t...)
	}
	if page, ok := g.cache.GetBytes(s.key); ok {
		g.scratch.Put(s)
		return page
	}
	s.buf = g.appendDoorwayCrawlerPage(s.buf[:0], dw, terms)
	return g.internPage(s)
}

func (g *Generator) appendDoorwayCrawlerPage(b []byte, dw *campaign.Doorway, terms []string) []byte {
	r := g.rngFor("doorway", dw.ID)
	sig := dw.Campaign.Signature
	b = append(b, "<!DOCTYPE html>\n<html>\n<head>\n"...)
	kw := terms
	if len(kw) > 12 {
		kw = kw[:12]
	}
	b = append(b, "<title>"...)
	for i, t := range firstN(kw, 3) {
		if i > 0 {
			b = append(b, " | "...)
		}
		b = append(b, t...)
	}
	b = append(b, "</title>\n"...)
	b = append(b, "<meta name=\"keywords\" content=\""...)
	for i, t := range kw {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, t...)
	}
	b = append(b, "\">\n"...)
	if sig.MetaMarker != "" {
		b = append(b, "<meta name=\""...)
		b = append(b, sig.MetaMarker...)
		b = append(b, "\" content=\""...)
		b = appendToken(b, r, 16)
		b = append(b, "\">\n"...)
	}
	if sig.CommentMarker != "" {
		b = append(b, "<!-- "...)
		b = append(b, sig.CommentMarker...)
		b = append(b, " -->\n"...)
	}
	pfx := sig.TemplatePrefix
	if pfx == "" {
		pfx = "seo"
	}
	b = append(b, "</head>\n<body class=\""...)
	b = append(b, pfx...)
	b = append(b, "-door\">\n"...)
	for i, t := range kw {
		b = append(b, "<h2 class=\""...)
		b = append(b, pfx...)
		b = append(b, "-kw\"><a href=\""...)
		b = appendDoorwayPath(b, sig, t)
		b = append(b, "\">"...)
		b = append(b, t...)
		b = append(b, "</a></h2>\n"...)
		b = append(b, "<p>"...)
		b = append(b, t...)
		b = append(b, ' ')
		b = appendSentence(b, r, 14)
		b = append(b, ' ')
		b = append(b, t...)
		b = append(b, "</p>\n"...)
		if i%3 == 2 && sig.Shortener != "" {
			b = append(b, "<a href=\"http://"...)
			b = append(b, sig.Shortener...)
			b = append(b, '/')
			b = appendToken(b, r, 6)
			b = append(b, "\">more</a>\n"...)
		}
	}
	// Backlink farm block: doorways link to each other to mimic structure.
	b = append(b, "<div class=\""...)
	b = append(b, pfx...)
	b = append(b, "-links\">\n"...)
	for i := 0; i < 5; i++ {
		b = append(b, "<a href=\"http://"...)
		b = append(b, dw.Domain...)
		b = appendDoorwayPath(b, sig, rng.Pick(r, fillerWords))
		b = append(b, "\">"...)
		b = appendSentence(b, r, 2)
		b = append(b, "</a>\n"...)
	}
	b = append(b, "</div>\n"...)
	if sig.AnalyticsID != "" {
		b = appendAnalyticsSnippet(b, sig.AnalyticsID)
	}
	if sig.ScriptLibrary != "" {
		b = append(b, "<script src=\"/js/"...)
		b = append(b, sig.ScriptLibrary...)
		b = append(b, "\"></script>\n"...)
	}
	b = append(b, "</body>\n</html>\n"...)
	return b
}

// appendSlug appends term with spaces replaced by '+'.
func appendSlug(dst []byte, term string) []byte {
	for i := 0; i < len(term); i++ {
		if term[i] == ' ' {
			dst = append(dst, '+')
		} else {
			dst = append(dst, term[i])
		}
	}
	return dst
}

// appendDoorwayPath renders the URL path pattern that names several
// campaigns (e.g. PHP?P=), used both in links and in the campaign's PSR
// URLs.
func appendDoorwayPath(dst []byte, sig campaign.Signature, term string) []byte {
	if sig.URLToken == "" {
		dst = append(dst, "/?q="...)
		return appendSlug(dst, term)
	}
	if strings.Contains(sig.URLToken, "=") {
		dst = append(dst, '/')
		dst = append(dst, sig.URLToken...)
		return appendSlug(dst, term)
	}
	dst = append(dst, '/')
	dst = append(dst, sig.URLToken...)
	dst = append(dst, "/?p="...)
	return appendSlug(dst, term)
}

// DoorwayPath exposes the doorway URL path for a term, for URL construction
// elsewhere (SERPs, referrer logs).
func DoorwayPath(sig campaign.Signature, term string) string {
	return string(appendDoorwayPath(nil, sig, term))
}

var originalTopics = []string{
	"community garden", "youth chess club", "parish newsletter",
	"cycling society", "pottery workshop", "local history archive",
}

// CompromisedOriginalPage renders the legitimate content of the hacked site
// hosting a doorway: what a direct (non-search) visitor sees, keeping the
// compromise invisible to the site owner (§3.1.1).
func (g *Generator) CompromisedOriginalPage(domain string) string {
	s := g.scratch.Get()
	s.key = append(s.key[:0], "orig/"...)
	s.key = append(s.key, domain...)
	if page, ok := g.cache.GetBytes(s.key); ok {
		g.scratch.Put(s)
		return page
	}
	s.buf = g.appendCompromisedOriginalPage(s.buf[:0], domain)
	return g.internPage(s)
}

func (g *Generator) appendCompromisedOriginalPage(b []byte, domain string) []byte {
	r := g.rngFor("original", domain)
	topic := rng.Pick(r, originalTopics)
	b = append(b, "<!DOCTYPE html>\n<html>\n<head>\n"...)
	b = append(b, "<title>"...)
	b = append(b, strings.Title(topic)...) //nolint:staticcheck // ASCII topics only
	b = append(b, " - "...)
	b = append(b, domain...)
	b = append(b, "</title>\n"...)
	b = append(b, "<meta name=\"generator\" content=\"WordPress 3.5.1\">\n"...)
	b = append(b, "</head>\n<body>\n"...)
	b = append(b, "<h1>Welcome to the "...)
	b = append(b, topic...)
	b = append(b, "</h1>\n"...)
	for i := 0; i < 4; i++ {
		b = append(b, "<div class=\"post\"><h3>Post "...)
		b = appendInt(b, i+1)
		b = append(b, "</h3><p>Our "...)
		b = append(b, topic...)
		b = append(b, " meets weekly; see the calendar for details. "...)
		b = append(b, loremSentence(r)...)
		b = append(b, "</p></div>\n"...)
	}
	b = append(b, "<div class=\"sidebar\"><a href=\"/about\">About</a> <a href=\"/contact\">Contact</a></div>\n"...)
	b = append(b, "</body>\n</html>\n"...)
	return b
}

var loremFragments = []string{
	"Meetings are open to everyone and newcomers are always welcome.",
	"Please bring your own materials and a cup for tea.",
	"The annual exhibition will be held in the church hall this spring.",
	"Membership renewals are due at the end of the month.",
	"Thanks to all the volunteers who helped at the weekend event.",
}

func loremSentence(r *rng.Source) string { return rng.Pick(r, loremFragments) }

// BenignResultPage renders a legitimate (retailer, review, news) search
// result for a term — the non-poisoned remainder of each SERP.
func (g *Generator) BenignResultPage(domain, term string) string {
	s := g.scratch.Get()
	s.key = append(s.key[:0], "benign/"...)
	s.key = append(s.key, domain...)
	s.key = append(s.key, '/')
	s.key = append(s.key, term...)
	if page, ok := g.cache.GetBytes(s.key); ok {
		g.scratch.Put(s)
		return page
	}
	s.buf = g.appendBenignResultPage(s.buf[:0], domain, term)
	return g.internPage(s)
}

func (g *Generator) appendBenignResultPage(b []byte, domain, term string) []byte {
	r := g.rngFor("benign", domain)
	b = append(b, "<!DOCTYPE html>\n<html>\n<head>\n"...)
	b = append(b, "<title>"...)
	b = append(b, term...)
	b = append(b, " — reviews and prices | "...)
	b = append(b, domain...)
	b = append(b, "</title>\n"...)
	b = append(b, "</head>\n<body>\n"...)
	b = append(b, "<h1>Shopping guide: "...)
	b = append(b, term...)
	b = append(b, "</h1>\n"...)
	for i := 0; i < 3; i++ {
		b = append(b, "<div class=\"review\"><h3>Review "...)
		b = appendInt(b, i+1)
		b = append(b, "</h3><p>"...)
		b = append(b, loremSentence(r)...)
		b = append(b, "</p></div>\n"...)
	}
	b = append(b, "<p>"...)
	b = appendSentence(b, r, 12)
	b = append(b, "</p>\n"...)
	b = append(b, "</body>\n</html>\n"...)
	return b
}

// SeizureNotice renders the serving-notice page a seized domain returns,
// embedding the court case identifier the seizure analysis scrapes
// (§5.3's data collection path). Notices are rare (one per seizure event),
// so they are built in scratch but not memoised.
func (g *Generator) SeizureNotice(firm, caseID string, domains []string) string {
	s := g.scratch.Get()
	b := s.buf[:0]
	b = append(b, "<!DOCTYPE html>\n<html>\n<head>\n<title>Domain Seized</title>\n</head>\n<body>\n"...)
	b = append(b, "<h1>This domain has been seized</h1>\n"...)
	b = append(b, "<p>Pursuant to a court order obtained by <span class=\"firm\">"...)
	b = append(b, firm...)
	b = append(b, "</span> on behalf of the trademark holder, this domain name has been transferred to the control of the brand protection agent.</p>\n"...)
	b = append(b, "<div class=\"case\" data-case=\""...)
	b = append(b, caseID...)
	b = append(b, "\">Case No. "...)
	b = append(b, caseID...)
	b = append(b, "</div>\n"...)
	b = append(b, "<div class=\"seized-domains\">\n"...)
	for _, d := range domains {
		b = append(b, "<span class=\"seized\">"...)
		b = append(b, d...)
		b = append(b, "</span>\n"...)
	}
	b = append(b, "</div>\n</body>\n</html>\n"...)
	s.buf = b
	out := string(b)
	g.scratch.Put(s)
	return out
}

func firstN(ss []string, n int) []string {
	if len(ss) < n {
		return ss
	}
	return ss[:n]
}
