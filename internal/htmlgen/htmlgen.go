// Package htmlgen synthesises the HTML the simulated web serves: counterfeit
// storefronts built from shared e-commerce templates plus per-campaign
// signature markers, keyword-stuffed doorway pages, compromised sites'
// original content, benign search results, seizure notice pages, and the
// obfuscated JavaScript cloaking payloads (redirect and full-page iframe)
// that the jsmini interpreter can execute.
//
// Generation is deterministic per (campaign, store/doorway, domain): the
// crawler may fetch the same URL many times and must see a stable document.
package htmlgen

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/campaign"
	"repro/internal/rng"
)

// Generator produces documents for one simulated world. Documents are
// deterministic per identity, so the generator memoises them: the crawler
// fetches the same URLs daily and must not pay generation cost each time.
type Generator struct {
	root  *rng.Source
	cache sync.Map // cache key -> string
}

// New returns a Generator deriving all randomness from r.
func New(r *rng.Source) *Generator {
	return &Generator{root: r.Sub("htmlgen")}
}

// memo returns the cached document for key, generating it once.
func (g *Generator) memo(key string, build func() string) string {
	if v, ok := g.cache.Load(key); ok {
		return v.(string)
	}
	s := build()
	actual, _ := g.cache.LoadOrStore(key, s)
	return actual.(string)
}

// rngFor yields the stable substream for one document identity.
func (g *Generator) rngFor(kind, id string) *rng.Source {
	return g.root.Sub(kind + "/" + id)
}

var fillerWords = []string{
	"quality", "fashion", "style", "classic", "genuine", "leather",
	"premium", "design", "collection", "season", "trend", "exclusive",
	"limited", "edition", "delivery", "worldwide", "guarantee", "original",
	"luxury", "authentic", "bestseller", "popular", "comfort", "elegant",
}

var productNouns = []string{
	"Handbag", "Tote", "Wallet", "Boots", "Sneakers", "Jacket", "Coat",
	"Watch", "Sunglasses", "Scarf", "Belt", "Headphones", "Polo Shirt",
	"Hoodie", "Slippers", "Backpack", "Bracelet", "Ring", "Earbuds",
}

// Platform is an e-commerce stack whose cookies/markup counterfeit stores
// reuse (§4.1.3 names Zen Cart and Magento; Realypay/Mallpayment
// processors; Ajstat/CNZZ analytics).
type Platform struct {
	Name      string
	Generator string // meta generator string
	CartPath  string
	Cookie    string // session cookie name the detection heuristic keys on
}

var platforms = []Platform{
	{"zencart", "shopping cart program by Zen Cart", "/index.php?main_page=shopping_cart", "zenid"},
	{"magento", "Magento, Varien, E-commerce", "/checkout/cart/", "frontend"},
}

// PlatformFor returns the e-commerce platform a store's pages are built on.
// It is derived from the same substream as StorePage, so markup and cookies
// always agree.
func (g *Generator) PlatformFor(sd *campaign.StoreDeployment) Platform {
	r := g.rngFor("store", sd.ID)
	return platforms[r.Intn(len(platforms))]
}

var processors = []string{"realypay", "mallpayment", "globalbill"}

// sentence builds a deterministic pseudo-sentence of n filler words.
func sentence(r *rng.Source, n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = rng.Pick(r, fillerWords)
	}
	return strings.Join(parts, " ")
}

// StorePage renders a counterfeit storefront's landing page as served on
// the given domain. The document mixes three layers of signal, which is
// what makes campaign classification non-trivial but learnable:
//
//   - platform markup shared across campaigns (Zen Cart / Magento classes,
//     cart and checkout affordances, payment-processor snippets),
//   - the campaign's in-house template signature (CSS prefix, analytics id,
//     comment markers, chat widget, meta markers),
//   - per-store noise (product mix, filler copy).
func (g *Generator) StorePage(sd *campaign.StoreDeployment, domain string) string {
	return g.memo("store/"+sd.ID+"/"+domain+"/"+sd.Campaign.Signature.TemplatePrefix, func() string {
		return g.storePage(sd, domain)
	})
}

func (g *Generator) storePage(sd *campaign.StoreDeployment, domain string) string {
	r := g.rngFor("store", sd.ID)
	sig := sd.Campaign.Signature
	plat := platforms[r.Intn(len(platforms))]
	proc := rng.Pick(r, processors)
	pfx := sig.TemplatePrefix
	if pfx == "" {
		pfx = "shop"
	}

	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "<title>%s %s Outlet - Official Online Store</title>\n",
		sd.Brand, rng.Pick(r, productNouns))
	fmt.Fprintf(&b, "<meta name=\"generator\" content=\"%s\">\n", plat.Generator)
	if sig.MetaMarker != "" {
		fmt.Fprintf(&b, "<meta name=\"%s\" content=\"%s\">\n", sig.MetaMarker, tokenFor(r))
	}
	fmt.Fprintf(&b, "<meta name=\"description\" content=\"%s %s\">\n",
		sd.Brand, sentence(r, 8))
	fmt.Fprintf(&b, "<link rel=\"stylesheet\" href=\"/skin/%s/base.css\">\n", pfx)
	if sig.CommentMarker != "" {
		fmt.Fprintf(&b, "<!-- %s -->\n", sig.CommentMarker)
	}
	b.WriteString("</head>\n<body class=\"" + pfx + "-body\">\n")
	fmt.Fprintf(&b, "<div class=\"%s-header\"><h1>%s %s</h1>", pfx, sd.Brand,
		localeBanner(sd.Locale))
	fmt.Fprintf(&b, "<div class=\"%s-nav\"><a href=\"/\">Home</a> <a href=\"%s\">Cart</a> <a href=\"/checkout\">Checkout</a> <a href=\"/track\">Track Order</a></div></div>\n",
		pfx, plat.CartPath)

	nProducts := 6 + r.Intn(6)
	fmt.Fprintf(&b, "<div class=\"%s-grid\">\n", pfx)
	for i := 0; i < nProducts; i++ {
		noun := rng.Pick(r, productNouns)
		price := 79 + r.Intn(300)
		fmt.Fprintf(&b,
			"<div class=\"%s-product\"><a href=\"/item/%d\">%s %s %s</a><span class=\"price\">$%d.00</span><a class=\"btn\" href=\"/cart/add/%d\">Add to Cart</a></div>\n",
			pfx, i, sd.Brand, rng.Pick(r, fillerWords), noun, price, i)
	}
	b.WriteString("</div>\n")
	fmt.Fprintf(&b, "<p class=\"%s-copy\">%s</p>\n", pfx, sentence(r, 18))

	// Payment processor: the merchant id exposed in page source is how the
	// paper confirmed stores engage processors directly (§3.1.2).
	fmt.Fprintf(&b,
		"<div class=\"payment\"><img src=\"https://pay.%s.com/badge.png\" alt=\"%s\"><input type=\"hidden\" name=\"merchant_id\" value=\"%s-%06d\"></div>\n",
		proc, proc, proc, merchantID(r, sd.ID))
	if sig.AnalyticsID != "" {
		b.WriteString(analyticsSnippet(sig.AnalyticsID))
	}
	if sig.ChatWidget != "" {
		fmt.Fprintf(&b, "<script src=\"/chat/%s/loader.js\"></script>\n", sig.ChatWidget)
	}
	if sig.ScriptLibrary != "" {
		fmt.Fprintf(&b, "<script src=\"/js/%s\"></script>\n", sig.ScriptLibrary)
	}
	fmt.Fprintf(&b, "<div class=\"footer\">&copy; 2014 %s. %s</div>\n", domain, sentence(r, 6))
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

func localeBanner(locale string) string {
	switch locale {
	case "uk":
		return "UK Official Outlet"
	case "de":
		return "Deutschland Online Shop"
	case "jp":
		return "日本公式オンラインストア"
	case "it":
		return "Negozio Online Italia"
	case "fr":
		return "Boutique en Ligne France"
	case "au":
		return "Australia Online Store"
	default:
		return "Factory Outlet Online"
	}
}

func merchantID(r *rng.Source, id string) int {
	var h int
	for _, c := range id {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return (h + r.Intn(1000)) % 1000000
}

func tokenFor(r *rng.Source) string {
	const hexdigits = "0123456789ABCDEF"
	b := make([]byte, 16)
	for i := range b {
		b[i] = hexdigits[r.Intn(16)]
	}
	return string(b)
}

// analyticsSnippet renders a web-analytics include whose account id is a
// strong campaign fingerprint (the paper lists 51.la, cnzz.com and
// statcounter as validation signals).
func analyticsSnippet(id string) string {
	switch {
	case strings.HasPrefix(id, "cnzz-"):
		return fmt.Sprintf("<script src=\"https://s4.cnzz.com/stat.php?id=%s\"></script>\n", id[5:])
	case strings.HasPrefix(id, "51la-"):
		return fmt.Sprintf("<script src=\"https://js.users.51.la/%s.js\"></script>\n", id[5:])
	default:
		return fmt.Sprintf("<script src=\"https://analytics.example/%s.js\"></script>\n", id)
	}
}

// DoorwayCrawlerPage renders what a search-engine crawler receives from a
// doorway: keyword-stuffed content crafted to rank for the vertical's
// terms, carrying the campaign's kit markers.
func (g *Generator) DoorwayCrawlerPage(dw *campaign.Doorway, terms []string) string {
	key := "door/" + dw.ID
	for _, t := range terms {
		key += "|" + t
	}
	return g.memo(key, func() string { return g.doorwayCrawlerPage(dw, terms) })
}

func (g *Generator) doorwayCrawlerPage(dw *campaign.Doorway, terms []string) string {
	r := g.rngFor("doorway", dw.ID)
	sig := dw.Campaign.Signature
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	kw := terms
	if len(kw) > 12 {
		kw = kw[:12]
	}
	fmt.Fprintf(&b, "<title>%s</title>\n", strings.Join(firstN(kw, 3), " | "))
	fmt.Fprintf(&b, "<meta name=\"keywords\" content=\"%s\">\n", strings.Join(kw, ","))
	if sig.MetaMarker != "" {
		fmt.Fprintf(&b, "<meta name=\"%s\" content=\"%s\">\n", sig.MetaMarker, tokenFor(r))
	}
	if sig.CommentMarker != "" {
		fmt.Fprintf(&b, "<!-- %s -->\n", sig.CommentMarker)
	}
	pfx := sig.TemplatePrefix
	if pfx == "" {
		pfx = "seo"
	}
	b.WriteString("</head>\n<body class=\"" + pfx + "-door\">\n")
	for i, t := range kw {
		fmt.Fprintf(&b, "<h2 class=\"%s-kw\"><a href=\"%s\">%s</a></h2>\n", pfx, doorwayPath(sig, t), t)
		fmt.Fprintf(&b, "<p>%s %s %s</p>\n", t, sentence(r, 14), t)
		if i%3 == 2 && sig.Shortener != "" {
			fmt.Fprintf(&b, "<a href=\"http://%s/%s\">more</a>\n", sig.Shortener, tokenFor(r)[:6])
		}
	}
	// Backlink farm block: doorways link to each other to mimic structure.
	fmt.Fprintf(&b, "<div class=\"%s-links\">\n", pfx)
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&b, "<a href=\"http://%s%s\">%s</a>\n",
			dw.Domain, doorwayPath(sig, rng.Pick(r, fillerWords)), sentence(r, 2))
	}
	b.WriteString("</div>\n")
	if sig.AnalyticsID != "" {
		b.WriteString(analyticsSnippet(sig.AnalyticsID))
	}
	if sig.ScriptLibrary != "" {
		fmt.Fprintf(&b, "<script src=\"/js/%s\"></script>\n", sig.ScriptLibrary)
	}
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

// doorwayPath renders the URL path pattern that names several campaigns
// (e.g. PHP?P=), used both in links and in the campaign's PSR URLs.
func doorwayPath(sig campaign.Signature, term string) string {
	slug := strings.ReplaceAll(term, " ", "+")
	if sig.URLToken == "" {
		return "/?q=" + slug
	}
	if strings.Contains(sig.URLToken, "=") {
		return "/" + sig.URLToken + slug
	}
	return "/" + sig.URLToken + "/?p=" + slug
}

// DoorwayPath exposes the doorway URL path for a term, for URL construction
// elsewhere (SERPs, referrer logs).
func DoorwayPath(sig campaign.Signature, term string) string { return doorwayPath(sig, term) }

// CompromisedOriginalPage renders the legitimate content of the hacked site
// hosting a doorway: what a direct (non-search) visitor sees, keeping the
// compromise invisible to the site owner (§3.1.1).
func (g *Generator) CompromisedOriginalPage(domain string) string {
	return g.memo("orig/"+domain, func() string { return g.compromisedOriginalPage(domain) })
}

func (g *Generator) compromisedOriginalPage(domain string) string {
	r := g.rngFor("original", domain)
	topic := rng.Pick(r, []string{
		"community garden", "youth chess club", "parish newsletter",
		"cycling society", "pottery workshop", "local history archive",
	})
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "<title>%s - %s</title>\n", strings.Title(topic), domain)
	b.WriteString("<meta name=\"generator\" content=\"WordPress 3.5.1\">\n")
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>Welcome to the %s</h1>\n", topic)
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&b, "<div class=\"post\"><h3>Post %d</h3><p>Our %s meets weekly; see the calendar for details. %s</p></div>\n",
			i+1, topic, loremSentence(r))
	}
	b.WriteString("<div class=\"sidebar\"><a href=\"/about\">About</a> <a href=\"/contact\">Contact</a></div>\n")
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

var loremFragments = []string{
	"Meetings are open to everyone and newcomers are always welcome.",
	"Please bring your own materials and a cup for tea.",
	"The annual exhibition will be held in the church hall this spring.",
	"Membership renewals are due at the end of the month.",
	"Thanks to all the volunteers who helped at the weekend event.",
}

func loremSentence(r *rng.Source) string { return rng.Pick(r, loremFragments) }

// BenignResultPage renders a legitimate (retailer, review, news) search
// result for a term — the non-poisoned remainder of each SERP.
func (g *Generator) BenignResultPage(domain, term string) string {
	return g.memo("benign/"+domain+"/"+term, func() string { return g.benignResultPage(domain, term) })
}

func (g *Generator) benignResultPage(domain, term string) string {
	r := g.rngFor("benign", domain)
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "<title>%s — reviews and prices | %s</title>\n", term, domain)
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>Shopping guide: %s</h1>\n", term)
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&b, "<div class=\"review\"><h3>Review %d</h3><p>%s</p></div>\n",
			i+1, loremSentence(r))
	}
	fmt.Fprintf(&b, "<p>%s</p>\n", sentence(r, 12))
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

// SeizureNotice renders the serving-notice page a seized domain returns,
// embedding the court case identifier the seizure analysis scrapes
// (§5.3's data collection path).
func (g *Generator) SeizureNotice(firm, caseID string, domains []string) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n<title>Domain Seized</title>\n</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>This domain has been seized</h1>\n")
	fmt.Fprintf(&b, "<p>Pursuant to a court order obtained by <span class=\"firm\">%s</span> on behalf of the trademark holder, this domain name has been transferred to the control of the brand protection agent.</p>\n", firm)
	fmt.Fprintf(&b, "<div class=\"case\" data-case=\"%s\">Case No. %s</div>\n", caseID, caseID)
	b.WriteString("<div class=\"seized-domains\">\n")
	for _, d := range domains {
		fmt.Fprintf(&b, "<span class=\"seized\">%s</span>\n", d)
	}
	b.WriteString("</div>\n</body>\n</html>\n")
	return b.String()
}

func firstN(ss []string, n int) []string {
	if len(ss) < n {
		return ss
	}
	return ss[:n]
}
