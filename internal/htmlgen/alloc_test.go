package htmlgen

import (
	"testing"
)

// TestSteadyStatePageGenerationAllocFree is the alloc gate for the observe
// phase's page-generation hot path: once a document has been memoised,
// re-serving it — key assembly, sharded lookup, scratch recycling — must not
// allocate at all.
func TestSteadyStatePageGenerationAllocFree(t *testing.T) {
	g, deps := testWorld(t)
	st := deps[0].Stores[0]
	dw := deps[0].Doorways[0]
	terms := []string{"cheap beats by dre", "beats by dre outlet", "discount beats"}

	cases := []struct {
		name string
		call func()
	}{
		{"StorePage", func() { g.StorePage(st, st.Domains[0]) }},
		{"DoorwayCrawlerPage", func() { g.DoorwayCrawlerPage(dw, terms) }},
		{"CompromisedOriginalPage", func() { g.CompromisedOriginalPage(dw.Domain) }},
		{"BenignResultPage", func() { g.BenignResultPage("reviews.example.org", terms[0]) }},
		{"PlatformFor", func() { g.PlatformFor(st) }},
	}
	for _, tc := range cases {
		tc.call() // warm the memo
		if allocs := testing.AllocsPerRun(500, tc.call); allocs != 0 {
			t.Errorf("%s steady state allocates %v/op, want 0", tc.name, allocs)
		}
	}
}
