package htmlgen

import (
	"fmt"
	"strings"

	"repro/internal/rng"
)

// obfuscate renders a JavaScript expression that evaluates to s, chosen
// from the obfuscation repertoire SEO kits use to defeat grep-style
// analysis (§3.1.1 notes the JavaScript is "frequently obfuscated").
// Every variant is executable by the jsmini interpreter.
func obfuscate(r *rng.Source, s string) string {
	switch r.Intn(5) {
	case 0: // plain literal
		return fmt.Sprintf("%q", s)
	case 1: // string concatenation in randomly sized chunks
		var parts []string
		for len(s) > 0 {
			n := 2 + r.Intn(5)
			if n > len(s) {
				n = len(s)
			}
			parts = append(parts, fmt.Sprintf("%q", s[:n]))
			s = s[n:]
		}
		return strings.Join(parts, " + ")
	case 2: // split/reverse/join
		rev := make([]byte, len(s))
		for i := 0; i < len(s); i++ {
			rev[len(s)-1-i] = s[i]
		}
		return fmt.Sprintf("%q.split(\"\").reverse().join(\"\")", string(rev))
	case 3: // String.fromCharCode
		codes := make([]string, len(s))
		for i := 0; i < len(s); i++ {
			codes[i] = fmt.Sprintf("%d", s[i])
		}
		return "String.fromCharCode(" + strings.Join(codes, ",") + ")"
	default: // percent-encoding + unescape
		var b strings.Builder
		for i := 0; i < len(s); i++ {
			fmt.Fprintf(&b, "%%%02x", s[i])
		}
		return fmt.Sprintf("unescape(%q)", b.String())
	}
}

// RedirectScript renders the client-side half of redirect cloaking: a
// script that sends visitors arriving from a search engine to the store.
// Visitors without a search referrer keep seeing the page, which keeps the
// compromise invisible to the site owner. id selects a stable obfuscation
// mix per doorway.
func (g *Generator) RedirectScript(id, target string) string {
	r := g.rngFor("redirect", id)
	u := obfuscate(r, target)
	cond := rng.Pick(r, []string{
		`document.referrer.indexOf("google") != -1`,
		`document.referrer.indexOf("search") != -1 || document.referrer.indexOf("google") != -1`,
		`document.referrer.length > 0 && document.referrer.indexOf("google") >= 0`,
	})
	body := fmt.Sprintf("var u = %s;\nif (%s) { window.location = u; }", u, cond)
	if r.Bool(0.3) {
		// Eval-wrapped variant: the redirect source itself is assembled at
		// runtime.
		inner := fmt.Sprintf("if (%s) { window.location = %s; }", cond, u)
		body = fmt.Sprintf("var c = %s;\neval(c);", obfuscate(r, inner))
	}
	return body
}

// IframeScript renders the iframe-cloaking payload: a script that loads the
// store in an iframe occupying the whole viewport, giving users the
// illusion of browsing the store while the underlying document — the one a
// non-rendering crawler sees — never changes (§3.1.1, Figure 1).
func (g *Generator) IframeScript(id, target string) string {
	r := g.rngFor("iframe", id)
	u := obfuscate(r, target)
	switch r.Intn(3) {
	case 0: // createElement + property assignment
		return fmt.Sprintf(`var u = %s;
var f = document.createElement("iframe");
f.src = u;
f.width = "100%%";
f.height = "100%%";
f.style.position = "absolute";
f.style.top = "0";
f.style.left = "0";
f.style.border = "0";
document.body.appendChild(f);`, u)
	case 1: // createElement + setAttribute, pixel dimensions above 800
		w := 900 + r.Intn(600)
		h := 850 + r.Intn(400)
		return fmt.Sprintf(`var u = %s;
var f = document.createElement("iframe");
f.setAttribute("src", u);
f.setAttribute("width", "%d");
f.setAttribute("height", "%d");
f.setAttribute("frameborder", "0");
document.body.appendChild(f);`, u, w, h)
	default: // document.write of the iframe markup
		return fmt.Sprintf(`var u = %s;
document.write('<iframe src="' + u + '" width="100%%" height="100%%" frameborder="0"></iframe>');`, u)
	}
}

// CloakedDoorwayUserPage renders the document a doorway serves to ordinary
// browsers under iframe cloaking: the same keyword content the crawler gets
// (or the original site content), plus the iframe payload in a script tag.
func (g *Generator) CloakedDoorwayUserPage(base, id, target string) string {
	s := g.scratch.Get()
	s.key = append(s.key[:0], "cloak/"...)
	s.key = append(s.key, id...)
	s.key = append(s.key, '/')
	s.key = append(s.key, target...)
	if page, ok := g.cache.GetBytes(s.key); ok {
		g.scratch.Put(s)
		return page
	}
	s.buf = append(s.buf[:0], injectScript(base, g.IframeScript(id, target))...)
	return g.internPage(s)
}

// InjectRedirect splices a redirect-cloaking script into a page.
func (g *Generator) InjectRedirect(base, id, target string) string {
	s := g.scratch.Get()
	s.key = append(s.key[:0], "inj/"...)
	s.key = append(s.key, id...)
	s.key = append(s.key, '/')
	s.key = append(s.key, target...)
	if page, ok := g.cache.GetBytes(s.key); ok {
		g.scratch.Put(s)
		return page
	}
	s.buf = append(s.buf[:0], injectScript(base, g.RedirectScript(id, target))...)
	return g.internPage(s)
}

// injectScript inserts a script element before </body> (or appends).
func injectScript(page, script string) string {
	tag := "<script type=\"text/javascript\">\n" + script + "\n</script>\n"
	if i := strings.LastIndex(page, "</body>"); i >= 0 {
		return page[:i] + tag + page[i:]
	}
	return page + tag
}
