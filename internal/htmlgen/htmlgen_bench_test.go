package htmlgen

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/rng"
	"repro/internal/simclock"
)

func benchWorld(b *testing.B) (*Generator, []*campaign.Deployment) {
	b.Helper()
	r := rng.New(7)
	specs := campaign.Roster(simclock.StudyWindow())
	deps := campaign.DeployAll(r.Sub("deploy"), specs, 0.02)
	return New(r), deps
}

// BenchmarkDoorwayCrawlerPage measures the steady-state (memoised) doorway
// fetch path, which the crawler hits for every doorway every day. The memo
// key covers the doorway identity plus the full term list.
func BenchmarkDoorwayCrawlerPage(b *testing.B) {
	g, deps := benchWorld(b)
	dw := deps[0].Doorways[0]
	terms := []string{
		"cheap beats by dre", "beats by dre outlet", "discount beats",
		"beats studio sale", "dre headphones cheap", "beats pro outlet",
	}
	g.DoorwayCrawlerPage(dw, terms)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.DoorwayCrawlerPage(dw, terms)
	}
}

// BenchmarkStorePageHit measures the steady-state (memoised) storefront
// fetch path.
func BenchmarkStorePageHit(b *testing.B) {
	g, deps := benchWorld(b)
	st := deps[0].Stores[0]
	g.StorePage(st, st.Domains[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.StorePage(st, st.Domains[0])
	}
}
