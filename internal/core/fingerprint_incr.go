package core

import (
	"math"

	"repro/internal/brands"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// Incremental fingerprinting.
//
// Dataset.Fingerprint walks every series and sorted map the dataset holds —
// O(whole study) per call — which is the right oracle but the wrong thing
// to pay every day of a long run. This file maintains a second digest, the
// day fingerprint, as a running sum updated at the exact points the dataset
// mutates, so reading it is O(1) at any day boundary.
//
// The two digests are different functions by necessity: FNV chaining is
// order-sensitive, so the full fingerprint cannot be patched in place when
// a value lands mid-stream. The day fingerprint instead sums (mod 2^64)
// one FNV-hashed *atom* per fact the dataset holds:
//
//	counter atoms   one whole atom per unit counted; N counts contribute
//	                N*atom (addition is how the multiset folds)
//	set atoms       FNV continued from a per-set prefix state over the
//	                member string; sets only grow, so inserts only add
//	series atoms    FNV continued from a per-series prefix over (day,
//	                float bits); a cell changing from a to b contributes
//	                atom(b)-atom(a), and zero cells contribute nothing,
//	                so the zero-filled allocation is digest-neutral
//	record atoms    seizures/reactions hash their append index too,
//	                keeping the digest order-sensitive where the dataset is
//
// Addition makes the digest independent of update order, which is what
// lets the parallel observe phase accumulate per-vertical deltas privately
// (dayObservation.fpDelta) and fold them in the commit phase.
//
// The invariant — enforced every day by TestIncrementalFingerprintMatchesFull
// — is that the accumulator equals RecomputeDayFingerprint, the from-scratch
// walk over the same atom grammar. Dataset.Fingerprint stays untouched as
// the cross-check oracle (the faults-off golden value depends on it).

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fpStr continues an FNV-1a state over s plus a NUL terminator (mirroring
// Fingerprint's str framing, so adjacent strings cannot alias).
func fpStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	h ^= 0
	h *= fnvPrime64
	return h
}

// fpU64 continues an FNV-1a state over the little-endian bytes of v.
func fpU64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// --- prefix states: computed once, continued per fact ----------------------

// atomCounter is the whole atom one unit of a per-vertical counter adds.
func atomCounter(v brands.Vertical, kind string) uint64 {
	return fpStr(fpU64(fpStr(fnvOffset64, "ctr"), uint64(v)), kind)
}

// setPfx is the prefix state of a per-vertical string set; the member atom
// is fpStr(pfx, member).
func setPfx(v brands.Vertical, name string) uint64 {
	return fpStr(fpU64(fpStr(fnvOffset64, "set"), uint64(v)), name)
}

// vertSeriesPfx is the prefix state of a per-vertical daily series.
func vertSeriesPfx(v brands.Vertical, name string) uint64 {
	return fpStr(fpU64(fpStr(fnvOffset64, "vsr"), uint64(v)), name)
}

// attrLayerPfx is the prefix of one vertical's attributed-share layer.
func attrLayerPfx(v brands.Vertical, label string) uint64 {
	return fpStr(fpU64(fpStr(fnvOffset64, "attr"), uint64(v)), label)
}

// seriesPfx is the prefix of a dataset-global series (churn, coverage).
func seriesPfx(name string) uint64 {
	return fpStr(fpStr(fnvOffset64, "ser"), name)
}

// campPfx is the prefix of one named field of one campaign's observations.
func campPfx(name, field string) uint64 {
	return fpStr(fpStr(fpStr(fnvOffset64, "camp"), name), field)
}

// watchedPfx is the prefix of one watched store's PSR series.
func watchedPfx(id, field string) uint64 {
	return fpStr(fpStr(fpStr(fnvOffset64, "watch"), id), field)
}

// daySetPfx is the prefix of a string->day map; the member atom is
// fpU64(fpStr(pfx, key), day).
func daySetPfx(name string) uint64 {
	return fpStr(fpStr(fnvOffset64, "dayset"), name)
}

// Dataset-global prefixes, shared by the incremental updates and the
// from-scratch recompute.
var (
	pfxChurnNew   = seriesPfx("churn_new")
	pfxChurnTotal = seriesPfx("churn_total")
	pfxCoverage   = seriesPfx("coverage")
	pfxOutage     = fpStr(fnvOffset64, "outage")
	pfxSeizure    = fpStr(fnvOffset64, "seizure")
	pfxReaction   = fpStr(fnvOffset64, "reaction")
	pfxStoreSeen  = daySetPfx("store_first_seen")
	pfxDoorSeen   = daySetPfx("door_first_seen")
	pfxDoorLabel  = daySetPfx("door_labeled_on")
	pfxOrders     = fpStr(fnvOffset64, "orders")
)

// --- atoms ------------------------------------------------------------------

// cellAtom is one series cell's contribution. Zero cells contribute
// nothing, by definition: a freshly allocated zero-filled series is
// digest-neutral, and Series.Add(d, 0) leaves both the cell and the digest
// unchanged.
func cellAtom(pfx uint64, day int, v float64) uint64 {
	if v == 0 {
		return 0
	}
	return fpU64(fpU64(pfx, uint64(day)), math.Float64bits(v))
}

// seriesSum is a whole series' contribution (the from-scratch side).
func seriesSum(pfx uint64, s metrics.Series) uint64 {
	var sum uint64
	for day, v := range s {
		sum += cellAtom(pfx, day, v)
	}
	return sum
}

// setSum is a whole string set's contribution (the from-scratch side).
func setSum(pfx uint64, m map[string]bool) uint64 {
	var sum uint64
	for k := range m {
		sum += fpStr(pfx, k)
	}
	return sum
}

// daySetSum is a whole string->day map's contribution.
func daySetSum(pfx uint64, m map[string]simclock.Day) uint64 {
	var sum uint64
	for k, d := range m {
		sum += fpU64(fpStr(pfx, k), uint64(d))
	}
	return sum
}

// seizureAtom hashes one observed seizure at its append index.
func seizureAtom(i int, s ObservedSeizure) uint64 {
	h := fpU64(pfxSeizure, uint64(i))
	h = fpStr(h, s.Domain)
	h = fpU64(h, uint64(s.Day))
	h = fpStr(h, s.CaseID)
	h = fpStr(h, s.FirmKey)
	h = fpStr(h, s.StoreID)
	if s.SeenInPSRs {
		h = fpU64(h, 1)
	}
	return h
}

// reactionAtom hashes one recorded reaction at its append index.
func reactionAtom(i int, r Reaction) uint64 {
	h := fpU64(pfxReaction, uint64(i))
	h = fpStr(h, r.StoreID)
	h = fpU64(h, uint64(r.Day))
	h = fpStr(h, r.NewDomain)
	return h
}

// orderSeriesAtom is one sampled-order entry's whole contribution. Entries
// are replaced wholesale when a resumed study re-finalizes, so the update
// subtracts the old entry's atom and adds the new one.
func orderSeriesAtom(id string, os *OrderSeries) uint64 {
	pfx := fpStr(pfxOrders, id)
	sum := fpStr(pfx, "present")
	sum += seriesSum(fpStr(pfx, "rates"), os.Rates)
	sum += seriesSum(fpStr(pfx, "volume"), os.Volume)
	sum += fpU64(fpStr(pfx, "delta"), uint64(os.TotalDelta))
	return sum
}

// metaAtom folds the run-shape constants, seeding the accumulator at
// NewDataset.
func (d *Dataset) metaAtom() uint64 {
	h := fpStr(fnvOffset64, "meta")
	h = fpU64(h, uint64(d.StudyDays))
	h = fpU64(h, uint64(d.SimDays))
	if d.FaultsEnabled {
		h = fpU64(h, 1)
	}
	return h
}

// --- incremental update helpers --------------------------------------------
//
// Every dataset mutation goes through one of these, which perform the write
// AND fold the digest delta into acc. The observe phase passes its private
// per-vertical accumulator (dayObservation.fpDelta); sequential paths pass
// &Dataset.fpIncr directly.

// fpSeriesAdd is Series.Add plus the digest delta for the changed cell.
func fpSeriesAdd(acc *uint64, pfx uint64, s metrics.Series, day int, v float64) {
	if day < 0 || day >= len(s) {
		return
	}
	old := s[day]
	s[day] = old + v
	*acc += cellAtom(pfx, day, old+v) - cellAtom(pfx, day, old)
}

// fpSetInsert inserts k into a grow-only set, folding the member atom on
// first insertion.
func fpSetInsert(acc *uint64, pfx uint64, m map[string]bool, k string) {
	if m[k] {
		return
	}
	m[k] = true
	*acc += fpStr(pfx, k)
}

// fpDaySetPut writes m[k] = day, replacing any previous atom for k.
func fpDaySetPut(acc *uint64, pfx uint64, m map[string]simclock.Day, k string, day simclock.Day) {
	old, ok := m[k]
	if ok && old == day {
		return
	}
	if ok {
		*acc -= fpU64(fpStr(pfx, k), uint64(old))
	}
	m[k] = day
	*acc += fpU64(fpStr(pfx, k), uint64(day))
}

// --- readout and oracle -----------------------------------------------------

// DayFingerprint returns the incremental digest of everything observed so
// far. It is O(1) — the accumulator is maintained at commit time — and
// valid at any day boundary, which is what lets long runs checkpoint and
// stream per-day digests without re-walking the whole dataset. It is a
// different function from Fingerprint (which stays the cross-run golden
// oracle); its own oracle is RecomputeDayFingerprint.
func (d *Dataset) DayFingerprint() uint64 { return d.fpIncr }

// RecomputeDayFingerprint computes the day fingerprint from scratch by
// walking the whole dataset over the same atom grammar the incremental
// updates use. TestIncrementalFingerprintMatchesFull asserts it equals
// DayFingerprint after every committed day; production code has no reason
// to call it.
func (d *Dataset) RecomputeDayFingerprint() uint64 {
	sum := d.metaAtom()
	for _, v := range brands.All() {
		vo := d.Verticals[v]
		sum += uint64(vo.PSRObservations) * atomCounter(v, "psr")
		sum += uint64(vo.LabeledObservations) * atomCounter(v, "labeled")
		sum += uint64(vo.LabelEligible) * atomCounter(v, "eligible")
		sum += seriesSum(vertSeriesPfx(v, "top10pct"), vo.Top10PoisonedPct)
		sum += seriesSum(vertSeriesPfx(v, "top100pct"), vo.Top100PoisonedPct)
		sum += seriesSum(vertSeriesPfx(v, "penalizedpct"), vo.PenalizedPct)
		for label, s := range vo.Attributed.Layers {
			sum += seriesSum(attrLayerPfx(v, label), s)
		}
		sum += setSum(setPfx(v, "doorways"), vo.DoorwaysSeen)
		sum += setSum(setPfx(v, "stores"), vo.StoresSeen)
		sum += setSum(setPfx(v, "campaigns"), vo.CampaignsSeen)
	}
	for name, co := range d.Campaigns {
		sum += seriesSum(campPfx(name, "top100"), co.PSRTop100)
		sum += seriesSum(campPfx(name, "top10"), co.PSRTop10)
		sum += seriesSum(campPfx(name, "labeled"), co.LabeledPSRs)
		sum += setSum(campPfx(name, "doorways"), co.Doorways)
		sum += setSum(campPfx(name, "stores"), co.StoresSeen)
		for v, ok := range co.Verticals {
			if ok {
				sum += fpU64(campPfx(name, "verticals"), uint64(v))
			}
		}
	}
	sum += seriesSum(pfxChurnNew, d.ChurnNew)
	sum += seriesSum(pfxChurnTotal, d.ChurnTotal)
	for i, s := range d.Seizures {
		sum += seizureAtom(i, s)
	}
	for i, r := range d.Reactions {
		sum += reactionAtom(i, r)
	}
	sum += daySetSum(pfxStoreSeen, d.StoreFirstSeen)
	sum += daySetSum(pfxDoorSeen, d.DoorFirstSeen)
	sum += daySetSum(pfxDoorLabel, d.DoorLabeledOn)
	for id, os := range d.SampledOrders {
		sum += orderSeriesAtom(id, os)
	}
	for id, ws := range d.WatchedPSRs {
		sum += seriesSum(watchedPfx(id, "top100"), ws.Top100)
		sum += seriesSum(watchedPfx(id, "top10"), ws.Top10)
	}
	if d.FaultsEnabled {
		sum += seriesSum(pfxCoverage, d.Coverage)
		for day, ok := range d.ObservedDays {
			if !ok {
				sum += fpU64(pfxOutage, uint64(day))
			}
		}
	}
	return sum
}
