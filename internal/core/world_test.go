package core

import (
	"strings"
	"testing"

	"repro/internal/simclock"
	"repro/internal/simweb"
)

func TestAttributeCachesAndMatchesTruth(t *testing.T) {
	d := small(t)
	w := d.World()
	// Attribute every named campaign's first store domain; most must match
	// ground truth (classifier accuracy), and results must be cached.
	var right, wrong, unknown int
	for _, dep := range w.Deps {
		if dep.Spec.IsTail() {
			continue
		}
		dom := dep.Stores[0].Domains[0]
		got := w.Attribute(dom, 0)
		switch got {
		case dep.Spec.Name:
			right++
		case "":
			unknown++
		default:
			wrong++
		}
		if again := w.Attribute(dom, 100); again != got {
			t.Fatalf("attribution for %s not cached: %q then %q", dom, got, again)
		}
	}
	if right <= wrong {
		t.Fatalf("attribution right=%d wrong=%d unknown=%d", right, wrong, unknown)
	}
}

func TestAttributeTailMostlyUnknown(t *testing.T) {
	d := small(t)
	w := d.World()
	var named, unknown int
	for _, dep := range w.Deps {
		if !dep.Spec.IsTail() {
			continue
		}
		for _, sd := range dep.Stores {
			if w.Attribute(sd.Domains[0], 0) == "" {
				unknown++
			} else {
				named++
			}
		}
	}
	if unknown == 0 {
		t.Fatal("no tail store left unattributed")
	}
	if named > unknown {
		t.Fatalf("tail misattribution dominates: named=%d unknown=%d", named, unknown)
	}
}

func TestAttributeDeadDomainUnknown(t *testing.T) {
	d := small(t)
	w := d.World()
	if got := w.Attribute("no-such-store.example", 0); got != "" {
		t.Fatalf("dead domain attributed to %q", got)
	}
}

func TestDoorwayTargetsBelongToSameCampaign(t *testing.T) {
	d := small(t)
	w := d.World()
	for _, dep := range w.Deps {
		for _, dw := range dep.Doorways {
			st, ok := w.DoorwayTarget(dw.ID)
			if !ok || st == nil {
				t.Fatalf("doorway %s has no target", dw.ID)
			}
			if st.Dep.Campaign.Key() != dep.Spec.Key() {
				t.Fatalf("doorway %s forwards to foreign campaign %s",
					dw.ID, st.Dep.Campaign.Name)
			}
		}
	}
}

func TestPurchaseTargetsCoverFigureCampaigns(t *testing.T) {
	d := small(t)
	w := d.World()
	targets := w.purchaseTargets()
	byCampaign := map[string]int{}
	for _, tgt := range targets {
		byCampaign[tgt.CampaignKey]++
	}
	for _, key := range []string{"key", "moonkis", "vera", "php?p="} {
		if byCampaign[key] == 0 {
			t.Fatalf("figure-4 campaign %s unsampled", key)
		}
	}
	if byCampaign["php?p="] < 4 {
		t.Fatalf("php?p= needs its four scripted stores sampled, got %d", byCampaign["php?p="])
	}
	for key := range byCampaign {
		if strings.HasPrefix(key, "tail.") {
			t.Fatal("tail campaigns must not be purchase targets")
		}
	}
}

func TestSupplierSiteMounted(t *testing.T) {
	d := small(t)
	w := d.World()
	resp := w.Web.Fetch(simweb.Request{
		URL: "http://" + SupplierDomain + "/", UserAgent: simweb.BrowserUA})
	if resp.Status != 200 || !strings.Contains(resp.Body, "data-min") {
		t.Fatalf("supplier site not serving: %d", resp.Status)
	}
}

func TestPaymentInterventionConfig(t *testing.T) {
	cfg := TestConfig()
	cfg.TermsPerVertical = 3
	cfg.SlotsPerTerm = 15
	cfg.ExtendedTail = false
	cfg.BreakBank = "realypay"
	cfg.BreakBankDay = 50
	w := NewWorld(cfg)
	var affected int
	for _, st := range w.Stores {
		if st.Processor.Name == "realypay" {
			affected++
			if !st.PaymentHalted(simclock.Day(60)) {
				t.Fatal("realypay store must be halted after the break day")
			}
			if st.PaymentHalted(simclock.Day(10)) {
				t.Fatal("realypay store must work before the break day")
			}
		} else if st.PaymentHalted(simclock.Day(60)) {
			t.Fatal("other banks' stores must be unaffected")
		}
	}
	if affected == 0 {
		t.Fatal("no store uses the broken bank")
	}
}

func TestWatchedStoresArmed(t *testing.T) {
	d := small(t)
	if len(d.WatchedPSRs) < 5 {
		t.Fatalf("watched stores = %d, want coco + 4 php?p=", len(d.WatchedPSRs))
	}
	w := d.World()
	for id := range d.WatchedPSRs {
		st, ok := w.StoreByID(id)
		if !ok {
			t.Fatalf("watched store %s unknown", id)
		}
		if !st.AWStatsPublic {
			t.Fatalf("case-study store %s must expose AWStats", id)
		}
	}
}
