package core

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/brands"
	"repro/internal/campaign"
	"repro/internal/intervention"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/store"
)

// Unknown is the attribution bucket for PSRs whose storefront the
// classifier could not confidently assign to a known campaign.
const Unknown = "unknown"

// VerticalObs accumulates one vertical's daily observations.
type VerticalObs struct {
	Vertical brands.Vertical
	// Percent-of-slots series over the simulation window.
	Top10PoisonedPct  metrics.Series
	Top100PoisonedPct metrics.Series
	PenalizedPct      metrics.Series // labeled or seized share of all slots
	// Attributed stacks the share of slots per campaign name (+ Unknown).
	Attributed *metrics.Stacked
	// Study-window cumulative counts (Table 1).
	PSRObservations int64
	DoorwaysSeen    map[string]bool
	StoresSeen      map[string]bool
	CampaignsSeen   map[string]bool
	// Label-policy accounting (§5.2.2): LabeledObservations counts PSRs
	// actually carrying the hacked label; LabelEligible counts PSRs whose
	// doorway domain was labeled — the coverage a full-URL (rather than
	// root-only) policy would have achieved.
	LabeledObservations int64
	LabelEligible       int64
}

// CampaignObs accumulates one named campaign's observations across
// verticals, keyed by the classifier's attribution.
type CampaignObs struct {
	Name        string
	PSRTop100   metrics.Series
	PSRTop10    metrics.Series
	LabeledPSRs metrics.Series
	Doorways    map[string]bool
	StoresSeen  map[string]bool
	Verticals   map[brands.Vertical]bool
}

// ObservedSeizure is a seizure visible through the crawled data.
type ObservedSeizure struct {
	Domain  string
	Day     simclock.Day
	CaseID  string
	FirmKey string
	StoreID string
	// SeenInPSRs marks seizures of store domains our crawl had observed —
	// the subset Table 3 reports as "# Stores".
	SeenInPSRs bool
}

// Reaction is a campaign re-pointing a store to a backup domain.
type Reaction struct {
	StoreID   string
	Day       simclock.Day
	NewDomain string
}

// Dataset is everything the experiments consume.
type Dataset struct {
	StudyDays int
	SimDays   int
	// DaysRun is how many simulation days actually executed — SimDays for
	// a completed run, fewer when RunContext was cancelled mid-study. It
	// describes the run, not the observations, so it is deliberately NOT
	// folded into Fingerprint: a fingerprint compares what was measured.
	DaysRun int

	Verticals map[brands.Vertical]*VerticalObs
	Campaigns map[string]*CampaignObs

	ChurnNew   metrics.Series
	ChurnTotal metrics.Series

	Seizures  []ObservedSeizure
	Reactions []Reaction

	// StoreFirstSeen is the day each store domain first appeared behind a
	// PSR; DoorFirstSeen likewise for doorway domains.
	StoreFirstSeen map[string]simclock.Day
	DoorFirstSeen  map[string]simclock.Day
	// DoorLabeledOn is filled at finalize from the search engine.
	DoorLabeledOn map[string]simclock.Day

	// SampledOrders holds the purchase-pair series per store id (filled
	// from the sampler at finalize).
	SampledOrders map[string]*OrderSeries

	// WatchedPSRs tracks daily PSR counts per case-study store (the coco
	// and PHP?P= stores of Figures 5 and 6), keyed by store id.
	WatchedPSRs map[string]*WatchedStore

	// FaultsEnabled records whether the study ran under fault injection.
	// The three fields below are allocated (and folded into Fingerprint)
	// only then, so fault-free datasets hash bit-identically to builds
	// that predate the fault layer.
	FaultsEnabled bool
	// Coverage is the per-day fraction of SERP slots the crawl observed
	// with a determinate verdict (1.0 = full coverage; 0 on outage days).
	// It is the loss mask for every per-day series in the dataset: a zero
	// in, say, Top100PoisonedPct on a day with Coverage 0 means "not
	// measured", not "no poisoning" — mirroring the real study's lost
	// crawl days.
	Coverage metrics.Series
	// ObservedDays is the coverage mask: false on whole-day crawler
	// outages, when no observation of any kind was made.
	ObservedDays []bool

	// fpIncr is the incremental day fingerprint: a running order-free sum
	// of per-fact atoms, folded at every mutation (see fingerprint_incr.go).
	// Read through DayFingerprint; verified against RecomputeDayFingerprint.
	fpIncr uint64

	world *World
}

// WatchedStore holds the per-day PSR visibility of a case-study store.
type WatchedStore struct {
	StoreID string
	Top100  metrics.Series
	Top10   metrics.Series
}

// OrderSeries pairs a store's purchase-pair estimates with ground truth.
type OrderSeries struct {
	StoreID    string
	Rates      metrics.Series
	Volume     metrics.Series
	TotalDelta int64
}

// NewDataset allocates observation storage for a world.
func NewDataset(w *World) *Dataset {
	d := &Dataset{
		StudyDays:      w.Study.Days(),
		SimDays:        w.Sim.Days(),
		Verticals:      make(map[brands.Vertical]*VerticalObs),
		Campaigns:      make(map[string]*CampaignObs),
		ChurnNew:       metrics.NewSeries(w.Sim.Days()),
		ChurnTotal:     metrics.NewSeries(w.Sim.Days()),
		StoreFirstSeen: make(map[string]simclock.Day),
		DoorFirstSeen:  make(map[string]simclock.Day),
		DoorLabeledOn:  make(map[string]simclock.Day),
		SampledOrders:  make(map[string]*OrderSeries),
		WatchedPSRs:    make(map[string]*WatchedStore),
		world:          w,
	}
	days := w.Sim.Days()
	if w.Faults != nil {
		d.FaultsEnabled = true
		d.Coverage = metrics.NewSeries(days)
		d.ObservedDays = make([]bool, days)
		for i := range d.ObservedDays {
			d.ObservedDays[i] = true
		}
	}
	for _, v := range brands.All() {
		d.Verticals[v] = &VerticalObs{
			Vertical:          v,
			Top10PoisonedPct:  metrics.NewSeries(days),
			Top100PoisonedPct: metrics.NewSeries(days),
			PenalizedPct:      metrics.NewSeries(days),
			Attributed:        metrics.NewStacked(days),
			DoorwaysSeen:      make(map[string]bool),
			StoresSeen:        make(map[string]bool),
			CampaignsSeen:     make(map[string]bool),
		}
	}
	d.fpIncr = d.metaAtom()
	return d
}

// campaignObs returns (allocating) the observation bucket for a campaign
// name.
func (d *Dataset) campaignObs(name string) *CampaignObs {
	c, ok := d.Campaigns[name]
	if !ok {
		c = &CampaignObs{
			Name:        name,
			PSRTop100:   metrics.NewSeries(d.SimDays),
			PSRTop10:    metrics.NewSeries(d.SimDays),
			LabeledPSRs: metrics.NewSeries(d.SimDays),
			Doorways:    make(map[string]bool),
			StoresSeen:  make(map[string]bool),
			Verticals:   make(map[brands.Vertical]bool),
		}
		d.Campaigns[name] = c
	}
	return c
}

func (d *Dataset) recordSeizure(domain string, c *intervention.CourtCase) {
	_, seen := d.StoreFirstSeen[domain]
	var storeID string
	if st, ok := d.world.storeByDom[domain]; ok {
		storeID = st.ID()
	}
	s := ObservedSeizure{
		Domain:  domain,
		Day:     c.Day,
		CaseID:  c.ID,
		FirmKey: c.Firm.Key,
		StoreID: storeID,
		// The crawl observes a seizure when the store domain had been seen
		// behind PSRs.
		SeenInPSRs: seen,
	}
	d.fpIncr += seizureAtom(len(d.Seizures), s)
	d.Seizures = append(d.Seizures, s)
}

// recordOutage marks a whole-day crawler outage in the coverage mask.
func (d *Dataset) recordOutage(day simclock.Day) {
	if !d.FaultsEnabled {
		return
	}
	if int(day) >= 0 && int(day) < len(d.ObservedDays) && d.ObservedDays[day] {
		d.ObservedDays[day] = false
		d.fpIncr += fpU64(pfxOutage, uint64(day))
	}
	// Coverage[day] stays 0: nothing was observed.
}

// recordCoverage books the day's observed-slot fraction. A day with no
// slots at all counts as fully covered — there was nothing to lose.
func (d *Dataset) recordCoverage(day simclock.Day, covered, total int) {
	if !d.FaultsEnabled {
		return
	}
	frac := 1.0
	if total > 0 {
		frac = float64(covered) / float64(total)
	}
	fpSeriesAdd(&d.fpIncr, pfxCoverage, d.Coverage, int(day), frac)
}

// MeanCoverage is the study-wide average per-day crawl coverage: 1.0 for a
// fault-free run, below 1.0 when slots or whole days were lost. Downstream
// consumers should read absolute daily counts (PSRs, order estimates)
// against this — the paper's own totals sit on top of its lost crawl days
// the same way.
func (d *Dataset) MeanCoverage() float64 {
	if !d.FaultsEnabled {
		return 1
	}
	return d.Coverage.Mean()
}

// OutageDays counts whole days the crawler was down.
func (d *Dataset) OutageDays() int {
	var n int
	for _, ok := range d.ObservedDays {
		if !ok {
			n++
		}
	}
	return n
}

func (d *Dataset) recordReaction(st *store.Store, newDomain string, day simclock.Day) {
	r := Reaction{StoreID: st.ID(), Day: day, NewDomain: newDomain}
	d.fpIncr += reactionAtom(len(d.Reactions), r)
	d.Reactions = append(d.Reactions, r)
}

// TotalPSRs sums the study-window PSR observations across verticals.
func (d *Dataset) TotalPSRs() int64 {
	var n int64
	for _, vo := range d.Verticals {
		n += vo.PSRObservations
	}
	return n
}

// TotalDoorways counts unique doorway domains seen behind PSRs.
func (d *Dataset) TotalDoorways() int {
	set := make(map[string]bool)
	for _, vo := range d.Verticals {
		for dom := range vo.DoorwaysSeen {
			set[dom] = true
		}
	}
	return len(set)
}

// TotalStores counts unique store domains seen behind PSRs.
func (d *Dataset) TotalStores() int {
	set := make(map[string]bool)
	for _, vo := range d.Verticals {
		for dom := range vo.StoresSeen {
			set[dom] = true
		}
	}
	return len(set)
}

// AttributedShare returns the fraction of PSR observations attributed to
// named campaigns (the paper classified 58%). The share is loss-aware by
// construction: it is a ratio over *observed* slots only — lost slots and
// outage days contribute zero to both numerator and denominator (see
// Coverage for how much was lost), so missing data cannot masquerade as
// unattributed traffic.
func (d *Dataset) AttributedShare() float64 {
	// Fold in fixed vertical/label order: float addition is not associative,
	// so map-order iteration would wobble the last bits between calls.
	var named, total float64
	for _, v := range brands.All() {
		vo := d.Verticals[v]
		for _, label := range vo.Attributed.Labels {
			sum := vo.Attributed.Layers[label].Sum()
			total += sum
			if label != Unknown {
				named += sum
			}
		}
	}
	if total == 0 {
		return 0
	}
	return named / total
}

// GroundTruthSpec resolves a campaign name to its spec (named roster plus
// tail), for validation experiments.
func (d *Dataset) GroundTruthSpec(name string) (*campaign.Spec, bool) {
	for _, s := range d.world.Specs {
		if s.Name == name {
			return s, true
		}
	}
	for _, s := range d.world.Tail {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// World returns the generating world (experiments need its engines).
func (d *Dataset) World() *World { return d.world }

// Fingerprint hashes every observation the dataset holds into a single
// value, folding floats in bit-exactly (math.Float64bits) and walking all
// maps in sorted key order. Two runs of the same study configuration must
// produce equal fingerprints regardless of GOMAXPROCS or worker counts —
// this is what the parallel day pipeline's determinism tests assert.
func (d *Dataset) Fingerprint() uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	str := func(s string) { h.Write([]byte(s)); h.Write([]byte{0}) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	series := func(s metrics.Series) {
		u64(uint64(len(s)))
		for _, v := range s {
			f64(v)
		}
	}
	boolSet := func(m map[string]bool) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			str(k)
		}
	}
	daySet := func(m map[string]simclock.Day) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			str(k)
			u64(uint64(m[k]))
		}
	}

	u64(uint64(d.StudyDays))
	u64(uint64(d.SimDays))
	for _, v := range brands.All() {
		vo := d.Verticals[v]
		u64(uint64(v))
		u64(uint64(vo.PSRObservations))
		u64(uint64(vo.LabeledObservations))
		u64(uint64(vo.LabelEligible))
		series(vo.Top10PoisonedPct)
		series(vo.Top100PoisonedPct)
		series(vo.PenalizedPct)
		for _, label := range vo.Attributed.Labels {
			str(label)
			series(vo.Attributed.Layers[label])
		}
		boolSet(vo.DoorwaysSeen)
		boolSet(vo.StoresSeen)
		boolSet(vo.CampaignsSeen)
	}
	names := make([]string, 0, len(d.Campaigns))
	for name := range d.Campaigns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		co := d.Campaigns[name]
		str(name)
		series(co.PSRTop100)
		series(co.PSRTop10)
		series(co.LabeledPSRs)
		boolSet(co.Doorways)
		boolSet(co.StoresSeen)
		for _, v := range brands.All() {
			if co.Verticals[v] {
				u64(uint64(v))
			}
		}
	}
	series(d.ChurnNew)
	series(d.ChurnTotal)
	for _, s := range d.Seizures {
		str(s.Domain)
		u64(uint64(s.Day))
		str(s.CaseID)
		str(s.FirmKey)
		str(s.StoreID)
		if s.SeenInPSRs {
			u64(1)
		}
	}
	for _, r := range d.Reactions {
		str(r.StoreID)
		u64(uint64(r.Day))
		str(r.NewDomain)
	}
	daySet(d.StoreFirstSeen)
	daySet(d.DoorFirstSeen)
	daySet(d.DoorLabeledOn)
	ids := make([]string, 0, len(d.SampledOrders))
	for id := range d.SampledOrders {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		os := d.SampledOrders[id]
		str(id)
		series(os.Rates)
		series(os.Volume)
		u64(uint64(os.TotalDelta))
	}
	ids = ids[:0]
	for id := range d.WatchedPSRs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ws := d.WatchedPSRs[id]
		str(id)
		series(ws.Top100)
		series(ws.Top10)
	}
	// Coverage folds in only for fault-injected studies, so fault-free
	// fingerprints stay bit-identical to the pre-fault pipeline (the CI
	// golden-value check depends on this).
	if d.FaultsEnabled {
		series(d.Coverage)
		for _, ok := range d.ObservedDays {
			if ok {
				u64(1)
			} else {
				u64(0)
			}
		}
	}
	return h.Sum64()
}
