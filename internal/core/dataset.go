package core

import (
	"repro/internal/brands"
	"repro/internal/campaign"
	"repro/internal/intervention"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/store"
)

// Unknown is the attribution bucket for PSRs whose storefront the
// classifier could not confidently assign to a known campaign.
const Unknown = "unknown"

// VerticalObs accumulates one vertical's daily observations.
type VerticalObs struct {
	Vertical brands.Vertical
	// Percent-of-slots series over the simulation window.
	Top10PoisonedPct  metrics.Series
	Top100PoisonedPct metrics.Series
	PenalizedPct      metrics.Series // labeled or seized share of all slots
	// Attributed stacks the share of slots per campaign name (+ Unknown).
	Attributed *metrics.Stacked
	// Study-window cumulative counts (Table 1).
	PSRObservations int64
	DoorwaysSeen    map[string]bool
	StoresSeen      map[string]bool
	CampaignsSeen   map[string]bool
	// Label-policy accounting (§5.2.2): LabeledObservations counts PSRs
	// actually carrying the hacked label; LabelEligible counts PSRs whose
	// doorway domain was labeled — the coverage a full-URL (rather than
	// root-only) policy would have achieved.
	LabeledObservations int64
	LabelEligible       int64
}

// CampaignObs accumulates one named campaign's observations across
// verticals, keyed by the classifier's attribution.
type CampaignObs struct {
	Name        string
	PSRTop100   metrics.Series
	PSRTop10    metrics.Series
	LabeledPSRs metrics.Series
	Doorways    map[string]bool
	StoresSeen  map[string]bool
	Verticals   map[brands.Vertical]bool
}

// ObservedSeizure is a seizure visible through the crawled data.
type ObservedSeizure struct {
	Domain  string
	Day     simclock.Day
	CaseID  string
	FirmKey string
	StoreID string
	// SeenInPSRs marks seizures of store domains our crawl had observed —
	// the subset Table 3 reports as "# Stores".
	SeenInPSRs bool
}

// Reaction is a campaign re-pointing a store to a backup domain.
type Reaction struct {
	StoreID   string
	Day       simclock.Day
	NewDomain string
}

// Dataset is everything the experiments consume.
type Dataset struct {
	StudyDays int
	SimDays   int

	Verticals map[brands.Vertical]*VerticalObs
	Campaigns map[string]*CampaignObs

	ChurnNew   metrics.Series
	ChurnTotal metrics.Series

	Seizures  []ObservedSeizure
	Reactions []Reaction

	// StoreFirstSeen is the day each store domain first appeared behind a
	// PSR; DoorFirstSeen likewise for doorway domains.
	StoreFirstSeen map[string]simclock.Day
	DoorFirstSeen  map[string]simclock.Day
	// DoorLabeledOn is filled at finalize from the search engine.
	DoorLabeledOn map[string]simclock.Day

	// SampledOrders holds the purchase-pair series per store id (filled
	// from the sampler at finalize).
	SampledOrders map[string]*OrderSeries

	// WatchedPSRs tracks daily PSR counts per case-study store (the coco
	// and PHP?P= stores of Figures 5 and 6), keyed by store id.
	WatchedPSRs map[string]*WatchedStore

	world *World
}

// WatchedStore holds the per-day PSR visibility of a case-study store.
type WatchedStore struct {
	StoreID string
	Top100  metrics.Series
	Top10   metrics.Series
}

// OrderSeries pairs a store's purchase-pair estimates with ground truth.
type OrderSeries struct {
	StoreID    string
	Rates      metrics.Series
	Volume     metrics.Series
	TotalDelta int64
}

// NewDataset allocates observation storage for a world.
func NewDataset(w *World) *Dataset {
	d := &Dataset{
		StudyDays:      w.Study.Days(),
		SimDays:        w.Sim.Days(),
		Verticals:      make(map[brands.Vertical]*VerticalObs),
		Campaigns:      make(map[string]*CampaignObs),
		ChurnNew:       metrics.NewSeries(w.Sim.Days()),
		ChurnTotal:     metrics.NewSeries(w.Sim.Days()),
		StoreFirstSeen: make(map[string]simclock.Day),
		DoorFirstSeen:  make(map[string]simclock.Day),
		DoorLabeledOn:  make(map[string]simclock.Day),
		SampledOrders:  make(map[string]*OrderSeries),
		WatchedPSRs:    make(map[string]*WatchedStore),
		world:          w,
	}
	days := w.Sim.Days()
	for _, v := range brands.All() {
		d.Verticals[v] = &VerticalObs{
			Vertical:          v,
			Top10PoisonedPct:  metrics.NewSeries(days),
			Top100PoisonedPct: metrics.NewSeries(days),
			PenalizedPct:      metrics.NewSeries(days),
			Attributed:        metrics.NewStacked(days),
			DoorwaysSeen:      make(map[string]bool),
			StoresSeen:        make(map[string]bool),
			CampaignsSeen:     make(map[string]bool),
		}
	}
	return d
}

// campaignObs returns (allocating) the observation bucket for a campaign
// name.
func (d *Dataset) campaignObs(name string) *CampaignObs {
	c, ok := d.Campaigns[name]
	if !ok {
		c = &CampaignObs{
			Name:        name,
			PSRTop100:   metrics.NewSeries(d.SimDays),
			PSRTop10:    metrics.NewSeries(d.SimDays),
			LabeledPSRs: metrics.NewSeries(d.SimDays),
			Doorways:    make(map[string]bool),
			StoresSeen:  make(map[string]bool),
			Verticals:   make(map[brands.Vertical]bool),
		}
		d.Campaigns[name] = c
	}
	return c
}

func (d *Dataset) recordSeizure(domain string, c *intervention.CourtCase) {
	_, seen := d.StoreFirstSeen[domain]
	var storeID string
	if st, ok := d.world.storeByDom[domain]; ok {
		storeID = st.ID()
	}
	d.Seizures = append(d.Seizures, ObservedSeizure{
		Domain:  domain,
		Day:     c.Day,
		CaseID:  c.ID,
		FirmKey: c.Firm.Key,
		StoreID: storeID,
		// The crawl observes a seizure when the store domain had been seen
		// behind PSRs.
		SeenInPSRs: seen,
	})
}

func (d *Dataset) recordReaction(st *store.Store, newDomain string, day simclock.Day) {
	d.Reactions = append(d.Reactions, Reaction{
		StoreID: st.ID(), Day: day, NewDomain: newDomain,
	})
}

// TotalPSRs sums the study-window PSR observations across verticals.
func (d *Dataset) TotalPSRs() int64 {
	var n int64
	for _, vo := range d.Verticals {
		n += vo.PSRObservations
	}
	return n
}

// TotalDoorways counts unique doorway domains seen behind PSRs.
func (d *Dataset) TotalDoorways() int {
	set := make(map[string]bool)
	for _, vo := range d.Verticals {
		for dom := range vo.DoorwaysSeen {
			set[dom] = true
		}
	}
	return len(set)
}

// TotalStores counts unique store domains seen behind PSRs.
func (d *Dataset) TotalStores() int {
	set := make(map[string]bool)
	for _, vo := range d.Verticals {
		for dom := range vo.StoresSeen {
			set[dom] = true
		}
	}
	return len(set)
}

// AttributedShare returns the fraction of PSR observations attributed to
// named campaigns (the paper classified 58%).
func (d *Dataset) AttributedShare() float64 {
	var named, total float64
	for _, vo := range d.Verticals {
		for label, s := range vo.Attributed.Layers {
			sum := s.Sum()
			total += sum
			if label != Unknown {
				named += sum
			}
		}
	}
	if total == 0 {
		return 0
	}
	return named / total
}

// GroundTruthSpec resolves a campaign name to its spec (named roster plus
// tail), for validation experiments.
func (d *Dataset) GroundTruthSpec(name string) (*campaign.Spec, bool) {
	for _, s := range d.world.Specs {
		if s.Name == name {
			return s, true
		}
	}
	for _, s := range d.world.Tail {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// World returns the generating world (experiments need its engines).
func (d *Dataset) World() *World { return d.world }
