package core

import (
	"os"
	"runtime"
	"testing"

	"repro/internal/faults"
)

// goldenSmallFingerprint is the smallConfig() dataset fingerprint of the
// fault-free pipeline, captured before fault injection existed. The CI
// fault-matrix job asserts it on every run: faults-off studies must stay
// bit-identical to the pre-fault pipeline forever — the injection hook, the
// resilient fetcher and the coverage mask all have to vanish completely when
// disabled.
const goldenSmallFingerprint = 0xf6f361ae7ec6499d

func TestFaultsOffMatchesGoldenFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	data := NewWorld(smallConfig()).Run()
	if data.FaultsEnabled {
		t.Fatal("faults-off study has FaultsEnabled set")
	}
	if data.MeanCoverage() != 1 || data.OutageDays() != 0 {
		t.Fatalf("faults-off study reports loss: coverage=%v outages=%d",
			data.MeanCoverage(), data.OutageDays())
	}
	if got := data.Fingerprint(); uint64(got) != goldenSmallFingerprint {
		t.Fatalf("faults-off fingerprint %#x != golden %#x — the disabled fault path is not inert",
			got, uint64(goldenSmallFingerprint))
	}
}

// matrixProfile picks the fault profile under test from the CI matrix's
// FAULT_PROFILE env var (off | moderate | severe), defaulting to moderate.
func matrixProfile(t *testing.T) (string, faults.Config) {
	t.Helper()
	name := os.Getenv("FAULT_PROFILE")
	if name == "" {
		name = "moderate"
	}
	cfg, err := faults.Profile(name)
	if err != nil {
		t.Fatal(err)
	}
	return name, cfg
}

// TestFaultPipelineDeterministic is the fault layer's core contract: with
// injection enabled, a study is still bit-identical between a single observe
// worker at GOMAXPROCS=1 and a full fan-out — every injection decision is a
// pure function of the plan seed and request attributes, never of
// scheduling.
func TestFaultPipelineDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	name, fcfg := matrixProfile(t)
	t.Logf("fault profile: %s", name)

	serialCfg := smallConfig()
	serialCfg.Faults = fcfg
	serialCfg.ObserveWorkers = 1
	serialCfg.CrawlWorkers = 1
	prev := runtime.GOMAXPROCS(1)
	serial := NewWorld(serialCfg).Run()
	runtime.GOMAXPROCS(prev)

	parCfg := smallConfig()
	parCfg.Faults = fcfg
	parCfg.ObserveWorkers = runtime.NumCPU()
	parCfg.CrawlWorkers = runtime.NumCPU()
	par := NewWorld(parCfg).Run()

	if serial.TotalPSRs() != par.TotalPSRs() {
		t.Errorf("PSR totals differ: serial=%d parallel=%d", serial.TotalPSRs(), par.TotalPSRs())
	}
	if serial.OutageDays() != par.OutageDays() {
		t.Errorf("outage days differ: serial=%d parallel=%d", serial.OutageDays(), par.OutageDays())
	}
	if serial.MeanCoverage() != par.MeanCoverage() {
		t.Errorf("coverage differs: serial=%v parallel=%v", serial.MeanCoverage(), par.MeanCoverage())
	}
	if got, want := par.Fingerprint(), serial.Fingerprint(); got != want {
		t.Errorf("fingerprints differ under %s faults: serial=%#x parallel=%#x", name, want, got)
	}
}

// TestSevereFaultsDegradeGracefully is the acceptance check: a study under
// the severe profile — double-digit fetch failure rates, dead domains, lost
// SERPs, whole crawler outage days — must complete without panicking,
// report the loss honestly (coverage < 1, outage days in the mask) and
// still produce a usable dataset.
func TestSevereFaultsDegradeGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallConfig()
	cfg.Faults, _ = faults.Profile("severe")
	w := NewWorld(cfg)
	data := w.Run()

	if !data.FaultsEnabled {
		t.Fatal("severe study not flagged FaultsEnabled")
	}
	if cov := data.MeanCoverage(); cov >= 1 || cov <= 0 {
		t.Fatalf("severe coverage %v, want in (0, 1)", cov)
	}
	if data.OutageDays() == 0 {
		t.Error("severe profile produced no whole-day outages across the study window")
	}
	for d, ok := range data.ObservedDays {
		if !ok && data.Coverage.At(d) != 0 {
			t.Fatalf("outage day %d has nonzero coverage %v", d, data.Coverage.At(d))
		}
	}
	if data.TotalPSRs() == 0 {
		t.Fatal("severe study observed nothing")
	}
	if data.TotalDoorways() == 0 || data.TotalStores() == 0 {
		t.Fatalf("severe study found no infrastructure: %d doorways, %d stores",
			data.TotalDoorways(), data.TotalStores())
	}
	st := w.Resilient.Stats()
	if st.Retries == 0 || st.Failures == 0 {
		t.Fatalf("resilient fetcher saw no faults under severe profile: %+v", st)
	}
	// And the run is reproducible: same seed, same profile, same dataset.
	again := NewWorld(cfg).Run()
	if got, want := again.Fingerprint(), data.Fingerprint(); got != want {
		t.Fatalf("severe study not reproducible: %#x vs %#x", got, want)
	}
}
