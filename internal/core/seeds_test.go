package core

import (
	"fmt"
	"testing"

	"repro/internal/simclock"
)

// TestInvariantsAcrossSeeds runs miniature studies under several seeds and
// checks that the paper's qualitative findings hold in every one — the
// reproduction must not hinge on a lucky seed.
func TestInvariantsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, seed := range []uint64{2, 7, 1234} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := TestConfig()
			cfg.Seed = seed
			cfg.TermsPerVertical = 4
			cfg.SlotsPerTerm = 25
			cfg.ExtendedTail = false
			w := NewWorld(cfg)
			d := w.Run()

			if d.TotalPSRs() == 0 || d.TotalStores() == 0 {
				t.Fatal("no ecosystem activity")
			}
			if share := d.AttributedShare(); share < 0.25 || share > 0.95 {
				t.Fatalf("attributed share = %v", share)
			}
			if len(d.Seizures) == 0 || len(d.Reactions) == 0 {
				t.Fatalf("seizures=%d reactions=%d", len(d.Seizures), len(d.Reactions))
			}
			// KEY must collapse after its demotion under every seed.
			var spec = w.Specs[0]
			for _, s := range w.Specs {
				if s.Name == "KEY" {
					spec = s
				}
			}
			count := func(from, to simclock.Day) float64 {
				var n float64
				if co := d.Campaigns["KEY"]; co != nil {
					for dd := from; dd < to; dd++ {
						n += co.PSRTop100.At(int(dd))
					}
				}
				return n
			}
			before := count(spec.DemotedOn-20, spec.DemotedOn)
			after := count(spec.DemotedOn+10, spec.DemotedOn+30)
			if before > 0 && after > before/2 {
				t.Fatalf("KEY did not collapse: before=%v after=%v", before, after)
			}
			// Reactions always follow seizures by the campaign's delay.
			for _, rc := range d.Reactions {
				st, ok := w.StoreByID(rc.StoreID)
				if !ok {
					t.Fatalf("unknown store %s", rc.StoreID)
				}
				_ = st
			}
		})
	}
}
