package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/brands"
	"repro/internal/campaign"
	"repro/internal/crawler"
	"repro/internal/intervention"
	"repro/internal/metrics"
	"repro/internal/purchase"
	"repro/internal/searchsim"
	"repro/internal/simclock"
	"repro/internal/simweb"
	"repro/internal/store"
)

// Durable checkpoints.
//
// A snapshot captures exactly the state a run mutates after NewWorld
// finishes wiring. Everything else — the campaign roster, deployments, term
// sets, the web, the classifier, the supplier dataset, the per-vertical
// observe snapshots — is a deterministic function of the Config and is
// rebuilt identically by constructing a fresh world, so restoring is
// "NewWorld(cfg), then overwrite the mutable state". The two sequential
// RNG streams a run advances (the search engine's and the seizure
// engine's) have their positions captured; every other random decision in
// the pipeline is a pure hash of (seed, request attributes) and needs no
// state.
//
// Deliberately NOT snapshotted:
//   - telemetry: observational only, proven fingerprint-neutral; a resumed
//     run's counters restart from zero and describe the resumed process.
//   - purchase targets (purchaseTargets): rebuilt lazily and
//     deterministically from the wiring.
//   - detector/htmlgen/simweb memos: pure caches whose contents never
//     change a verdict, only whether it is recomputed.

// SnapshotVersion identifies the snapshot payload schema. Bump on any
// incompatible change to StudySnapshot or the state types it embeds.
// Version 2 added the self-describing Version field to the payload;
// version-1 payloads decode with Version 0 and remain loadable.
const SnapshotVersion = 2

// AttributionEntry is one cached classifier verdict (domain -> campaign
// name, "" = unknown). The cache is state, not memoisation: verdicts are
// deterministic per (domain, day) but depend on the day of first
// classification, so a resumed run must inherit them.
type AttributionEntry struct {
	Domain string
	Name   string
}

// DomainDayEntry is one serialized string->day map entry.
type DomainDayEntry struct {
	Key string
	Day simclock.Day
}

// StackedState serializes a metrics.Stacked preserving label insertion
// order (Dataset.Fingerprint walks labels in that order).
type StackedState struct {
	Labels []string
	Layers []metrics.Series // aligned with Labels
}

// VerticalObsState is one vertical's serialized observations.
type VerticalObsState struct {
	Vertical            int
	Top10PoisonedPct    metrics.Series
	Top100PoisonedPct   metrics.Series
	PenalizedPct        metrics.Series
	Attributed          StackedState
	PSRObservations     int64
	LabeledObservations int64
	LabelEligible       int64
	DoorwaysSeen        []string // sorted
	StoresSeen          []string // sorted
	CampaignsSeen       []string // sorted
}

// CampaignObsState is one campaign's serialized observations.
type CampaignObsState struct {
	Name        string
	PSRTop100   metrics.Series
	PSRTop10    metrics.Series
	LabeledPSRs metrics.Series
	Doorways    []string // sorted
	StoresSeen  []string // sorted
	Verticals   []int    // sorted
}

// OrderSeriesState is one store's serialized purchase-pair estimate.
type OrderSeriesState struct {
	StoreID    string
	Rates      metrics.Series
	Volume     metrics.Series
	TotalDelta int64
}

// WatchedStoreState is one case-study store's serialized PSR series.
type WatchedStoreState struct {
	StoreID string
	Top100  metrics.Series
	Top10   metrics.Series
}

// DatasetState is the dataset's complete mutable state, maps flattened to
// sorted slices so the serialized form is deterministic.
type DatasetState struct {
	DaysRun        int
	Verticals      []VerticalObsState // in brands.All() order
	Campaigns      []CampaignObsState // sorted by Name
	ChurnNew       metrics.Series
	ChurnTotal     metrics.Series
	Seizures       []ObservedSeizure
	Reactions      []Reaction
	StoreFirstSeen []DomainDayEntry // sorted by Key
	DoorFirstSeen  []DomainDayEntry
	DoorLabeledOn  []DomainDayEntry
	SampledOrders  []OrderSeriesState // sorted by StoreID
	WatchedPSRs    []WatchedStoreState
	FaultsEnabled  bool
	Coverage       metrics.Series
	ObservedDays   []bool
	FpIncr         uint64
}

// StudySnapshot is the complete mutable state of a running study at a day
// boundary. ConfigHash binds it to the generating Config: a snapshot is
// only meaningful against a world built from the same configuration.
type StudySnapshot struct {
	// Version is the SnapshotVersion the writing build serialized. Decoders
	// reject payloads newer than they understand (a typed error, not a
	// corruption class); older payloads — including version-1 files that
	// predate the field and decode as 0 — stay loadable.
	Version    int
	ConfigHash uint64
	NextDay    simclock.Day
	Engine     searchsim.EngineState
	Stores     []store.State // in w.Stores order
	Labeler    intervention.LabelerState
	Seizure    intervention.SeizureState
	Sampler    purchase.SamplerState
	Crawler    crawler.CrawlerState
	// Resilient is nil when the study runs without fault injection (the
	// retry/breaker layer does not exist then).
	Resilient   *crawler.ResilientState
	Attribution []AttributionEntry // sorted by Domain
	Dataset     DatasetState
}

// ConfigHash digests every Config field that shapes the simulation.
// Telemetry is excluded: it is observational wiring, proven
// fingerprint-neutral, and a study may legitimately resume with a
// different registry (or none).
func (c Config) ConfigHash() uint64 {
	h := fpStr(fnvOffset64, "config/v1")
	h = fpU64(h, c.Seed)
	h = fpU64(h, math.Float64bits(c.Scale))
	h = fpU64(h, uint64(c.TermsPerVertical))
	h = fpU64(h, uint64(c.SlotsPerTerm))
	h = fpU64(h, uint64(c.TailCampaigns))
	h = fpU64(h, uint64(c.SampleStoresPerCampaign))
	h = fpU64(h, uint64(c.SeedDocsTarget))
	h = fpU64(h, math.Float64bits(c.UnknownThreshold))
	h = fpU64(h, uint64(c.CrawlRecheckDays))
	h = fpU64(h, b2u(c.VanGogh))
	h = fpU64(h, b2u(c.RenderOnDagger))
	h = fpU64(h, uint64(c.SupplierRecords))
	h = fpU64(h, b2u(c.ExtendedTail))
	h = fpU64(h, b2u(c.ReactiveSeizures))
	h = fpStr(h, c.BreakBank)
	h = fpU64(h, uint64(c.BreakBankDay))
	h = fpU64(h, math.Float64bits(c.Faults.TimeoutRate))
	h = fpU64(h, math.Float64bits(c.Faults.ErrorRate))
	h = fpU64(h, math.Float64bits(c.Faults.TruncateRate))
	h = fpU64(h, math.Float64bits(c.Faults.DeadDomainRate))
	h = fpU64(h, math.Float64bits(c.Faults.RateLimitRate))
	h = fpU64(h, math.Float64bits(c.Faults.OutageRate))
	// CrawlWorkers, ObserveWorkers and MaxDays are driving knobs, not
	// simulation shape: every day that runs is bit-identical at any worker
	// count or cap, and a resumed run may use different values than the
	// killed one (e.g. resume a capped study to the full window).
	return h
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Snapshot captures the world's complete mutable state. It must be called
// at a day boundary, when the day pipeline is quiescent (RunContext's
// OnDayEnd hook guarantees this; so does any moment no Run* call is
// active).
func (w *World) Snapshot() *StudySnapshot {
	snap := &StudySnapshot{
		Version:    SnapshotVersion,
		ConfigHash: w.Cfg.ConfigHash(),
		NextDay:    w.nextDay,
		Engine:     w.Engine.ExportState(),
		Labeler:    w.Labeler.ExportState(),
		Seizure:    w.Seizure.ExportState(),
		Sampler:    w.Sampler.ExportState(),
		Crawler:    w.Crawler.ExportCache(),
	}
	for _, st := range w.Stores {
		snap.Stores = append(snap.Stores, st.ExportState())
	}
	if w.Resilient != nil {
		rs := w.Resilient.ExportState()
		snap.Resilient = &rs
	}
	w.attrMu.Lock()
	for dom, name := range w.attribution {
		snap.Attribution = append(snap.Attribution, AttributionEntry{Domain: dom, Name: name})
	}
	w.attrMu.Unlock()
	sort.Slice(snap.Attribution, func(i, j int) bool { return snap.Attribution[i].Domain < snap.Attribution[j].Domain })
	snap.Dataset = w.Data.exportState()
	return snap
}

// RestoreSnapshot overwrites a freshly constructed world's mutable state
// with a snapshot. The world must not have run any days yet, and must have
// been built from the same Config the snapshot was taken under (checked
// via ConfigHash). On success the world's resume cursor sits at
// snap.NextDay and a subsequent RunContext continues the study exactly
// where the snapshotted process left off.
func (w *World) RestoreSnapshot(snap *StudySnapshot) error {
	if w.nextDay != 0 {
		return fmt.Errorf("core: RestoreSnapshot on a world that already ran %d days", w.nextDay)
	}
	if got, want := w.Cfg.ConfigHash(), snap.ConfigHash; got != want {
		return fmt.Errorf("core: snapshot config hash %016x does not match world config %016x", want, got)
	}
	if snap.NextDay < 0 || int(snap.NextDay) > w.Sim.Days() {
		return fmt.Errorf("core: snapshot day cursor %d outside simulation window [0, %d]", snap.NextDay, w.Sim.Days())
	}
	if err := w.Engine.RestoreState(snap.Engine, w.resolveDoorway); err != nil {
		return err
	}
	if len(snap.Stores) != len(w.Stores) {
		return fmt.Errorf("core: snapshot has %d stores, world has %d", len(snap.Stores), len(w.Stores))
	}
	for _, st := range snap.Stores {
		rt, ok := w.storesByID[st.ID]
		if !ok {
			return fmt.Errorf("core: snapshot references unknown store %q", st.ID)
		}
		if err := rt.RestoreState(st); err != nil {
			return err
		}
	}
	w.Labeler.RestoreState(snap.Labeler)
	if err := w.Seizure.RestoreState(snap.Seizure); err != nil {
		return err
	}
	w.Sampler.RestoreState(snap.Sampler)
	w.Crawler.RestoreCache(snap.Crawler)
	switch {
	case snap.Resilient != nil && w.Resilient != nil:
		w.Resilient.RestoreState(*snap.Resilient)
	case snap.Resilient != nil || w.Resilient != nil:
		return fmt.Errorf("core: snapshot and world disagree on fault injection")
	}
	w.attrMu.Lock()
	w.attribution = make(map[string]string, len(snap.Attribution))
	for _, e := range snap.Attribution {
		w.attribution[e.Domain] = e.Name
	}
	w.attrMu.Unlock()
	if err := w.Data.restoreState(snap.Dataset); err != nil {
		return err
	}
	// Re-serve seizure notices: every in-study case seized its victim
	// stores' then-current domains (the first len(ObservedStoreIDs) entries
	// of the case's domain list; the bulk tail was never mounted). The
	// snapshotted crawler cache already reflects the Invalidate each
	// seizure issued.
	for _, c := range w.Seizure.Cases() {
		for i := 0; i < len(c.ObservedStoreIDs) && i < len(c.Domains); i++ {
			w.Web.Register(c.Domains[i], &simweb.SeizureNoticeSite{
				Firm:    c.Firm.Name,
				CaseID:  c.ID,
				Domains: c.Domains,
				Gen:     w.Gen,
			})
		}
	}
	w.nextDay = snap.NextDay
	return nil
}

// resolveDoorway maps a doorway domain to its deployed doorway.
func (w *World) resolveDoorway(dom string) *campaign.Doorway {
	return w.doorByDom[dom]
}

// exportState flattens the dataset into its serialized form.
func (d *Dataset) exportState() DatasetState {
	st := DatasetState{
		DaysRun:        d.DaysRun,
		ChurnNew:       append(metrics.Series(nil), d.ChurnNew...),
		ChurnTotal:     append(metrics.Series(nil), d.ChurnTotal...),
		Seizures:       append([]ObservedSeizure(nil), d.Seizures...),
		Reactions:      append([]Reaction(nil), d.Reactions...),
		StoreFirstSeen: sortedDaySet(d.StoreFirstSeen),
		DoorFirstSeen:  sortedDaySet(d.DoorFirstSeen),
		DoorLabeledOn:  sortedDaySet(d.DoorLabeledOn),
		FaultsEnabled:  d.FaultsEnabled,
		Coverage:       append(metrics.Series(nil), d.Coverage...),
		ObservedDays:   append([]bool(nil), d.ObservedDays...),
		FpIncr:         d.fpIncr,
	}
	for _, v := range brands.All() {
		vo := d.Verticals[v]
		vs := VerticalObsState{
			Vertical:            int(v),
			Top10PoisonedPct:    append(metrics.Series(nil), vo.Top10PoisonedPct...),
			Top100PoisonedPct:   append(metrics.Series(nil), vo.Top100PoisonedPct...),
			PenalizedPct:        append(metrics.Series(nil), vo.PenalizedPct...),
			PSRObservations:     vo.PSRObservations,
			LabeledObservations: vo.LabeledObservations,
			LabelEligible:       vo.LabelEligible,
			DoorwaysSeen:        sortedSet(vo.DoorwaysSeen),
			StoresSeen:          sortedSet(vo.StoresSeen),
			CampaignsSeen:       sortedSet(vo.CampaignsSeen),
		}
		for _, label := range vo.Attributed.Labels {
			vs.Attributed.Labels = append(vs.Attributed.Labels, label)
			vs.Attributed.Layers = append(vs.Attributed.Layers,
				append(metrics.Series(nil), vo.Attributed.Layers[label]...))
		}
		st.Verticals = append(st.Verticals, vs)
	}
	names := make([]string, 0, len(d.Campaigns))
	for name := range d.Campaigns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		co := d.Campaigns[name]
		cs := CampaignObsState{
			Name:        name,
			PSRTop100:   append(metrics.Series(nil), co.PSRTop100...),
			PSRTop10:    append(metrics.Series(nil), co.PSRTop10...),
			LabeledPSRs: append(metrics.Series(nil), co.LabeledPSRs...),
			Doorways:    sortedSet(co.Doorways),
			StoresSeen:  sortedSet(co.StoresSeen),
		}
		for _, v := range brands.All() {
			if co.Verticals[v] {
				cs.Verticals = append(cs.Verticals, int(v))
			}
		}
		st.Campaigns = append(st.Campaigns, cs)
	}
	ids := make([]string, 0, len(d.SampledOrders))
	for id := range d.SampledOrders {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		os := d.SampledOrders[id]
		st.SampledOrders = append(st.SampledOrders, OrderSeriesState{
			StoreID:    id,
			Rates:      append(metrics.Series(nil), os.Rates...),
			Volume:     append(metrics.Series(nil), os.Volume...),
			TotalDelta: os.TotalDelta,
		})
	}
	ids = ids[:0]
	for id := range d.WatchedPSRs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ws := d.WatchedPSRs[id]
		st.WatchedPSRs = append(st.WatchedPSRs, WatchedStoreState{
			StoreID: id,
			Top100:  append(metrics.Series(nil), ws.Top100...),
			Top10:   append(metrics.Series(nil), ws.Top10...),
		})
	}
	return st
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedDaySet(m map[string]simclock.Day) []DomainDayEntry {
	out := make([]DomainDayEntry, 0, len(m))
	for k, d := range m {
		out = append(out, DomainDayEntry{Key: k, Day: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// restoreState overwrites a freshly allocated dataset (NewDataset output)
// with serialized observations. The restored incremental fingerprint is
// cross-checked against the from-scratch recompute, so a snapshot whose
// facts and digest disagree — survivable corruption the envelope checksum
// missed, or a schema drift — is rejected rather than silently resumed.
func (d *Dataset) restoreState(st DatasetState) error {
	days := d.SimDays
	if st.FaultsEnabled != d.FaultsEnabled {
		return fmt.Errorf("core: snapshot and world disagree on fault injection")
	}
	byVert := make(map[int]*VerticalObsState, len(st.Verticals))
	for i := range st.Verticals {
		byVert[st.Verticals[i].Vertical] = &st.Verticals[i]
	}
	for _, v := range brands.All() {
		vo := d.Verticals[v]
		vs, ok := byVert[int(v)]
		if !ok {
			return fmt.Errorf("core: snapshot missing vertical %d", int(v))
		}
		if len(vs.Top10PoisonedPct) != days || len(vs.Top100PoisonedPct) != days || len(vs.PenalizedPct) != days {
			return fmt.Errorf("core: vertical %d series span mismatch", int(v))
		}
		if len(vs.Attributed.Labels) != len(vs.Attributed.Layers) {
			return fmt.Errorf("core: vertical %d attributed labels/layers misaligned", int(v))
		}
		copy(vo.Top10PoisonedPct, vs.Top10PoisonedPct)
		copy(vo.Top100PoisonedPct, vs.Top100PoisonedPct)
		copy(vo.PenalizedPct, vs.PenalizedPct)
		vo.PSRObservations = vs.PSRObservations
		vo.LabeledObservations = vs.LabeledObservations
		vo.LabelEligible = vs.LabelEligible
		vo.Attributed = metrics.NewStacked(days)
		for i, label := range vs.Attributed.Labels {
			if len(vs.Attributed.Layers[i]) != days {
				return fmt.Errorf("core: vertical %d attributed layer %q span mismatch", int(v), label)
			}
			copy(vo.Attributed.Layer(label), vs.Attributed.Layers[i])
		}
		vo.DoorwaysSeen = setFrom(vs.DoorwaysSeen)
		vo.StoresSeen = setFrom(vs.StoresSeen)
		vo.CampaignsSeen = setFrom(vs.CampaignsSeen)
	}
	d.Campaigns = make(map[string]*CampaignObs, len(st.Campaigns))
	for _, cs := range st.Campaigns {
		if len(cs.PSRTop100) != days || len(cs.PSRTop10) != days || len(cs.LabeledPSRs) != days {
			return fmt.Errorf("core: campaign %q series span mismatch", cs.Name)
		}
		co := &CampaignObs{
			Name:        cs.Name,
			PSRTop100:   append(metrics.Series(nil), cs.PSRTop100...),
			PSRTop10:    append(metrics.Series(nil), cs.PSRTop10...),
			LabeledPSRs: append(metrics.Series(nil), cs.LabeledPSRs...),
			Doorways:    setFrom(cs.Doorways),
			StoresSeen:  setFrom(cs.StoresSeen),
			Verticals:   make(map[brands.Vertical]bool, len(cs.Verticals)),
		}
		for _, v := range cs.Verticals {
			co.Verticals[brands.Vertical(v)] = true
		}
		d.Campaigns[cs.Name] = co
	}
	if len(st.ChurnNew) != days || len(st.ChurnTotal) != days {
		return fmt.Errorf("core: churn series span mismatch")
	}
	copy(d.ChurnNew, st.ChurnNew)
	copy(d.ChurnTotal, st.ChurnTotal)
	d.DaysRun = st.DaysRun
	d.Seizures = append([]ObservedSeizure(nil), st.Seizures...)
	d.Reactions = append([]Reaction(nil), st.Reactions...)
	d.StoreFirstSeen = daySetFrom(st.StoreFirstSeen)
	d.DoorFirstSeen = daySetFrom(st.DoorFirstSeen)
	d.DoorLabeledOn = daySetFrom(st.DoorLabeledOn)
	d.SampledOrders = make(map[string]*OrderSeries, len(st.SampledOrders))
	for _, os := range st.SampledOrders {
		d.SampledOrders[os.StoreID] = &OrderSeries{
			StoreID:    os.StoreID,
			Rates:      append(metrics.Series(nil), os.Rates...),
			Volume:     append(metrics.Series(nil), os.Volume...),
			TotalDelta: os.TotalDelta,
		}
	}
	for _, ws := range st.WatchedPSRs {
		cur, ok := d.WatchedPSRs[ws.StoreID]
		if !ok {
			return fmt.Errorf("core: snapshot watches unknown store %q", ws.StoreID)
		}
		if len(ws.Top100) != days || len(ws.Top10) != days {
			return fmt.Errorf("core: watched store %q series span mismatch", ws.StoreID)
		}
		copy(cur.Top100, ws.Top100)
		copy(cur.Top10, ws.Top10)
	}
	if d.FaultsEnabled {
		if len(st.Coverage) != days || len(st.ObservedDays) != days {
			return fmt.Errorf("core: coverage span mismatch")
		}
		copy(d.Coverage, st.Coverage)
		copy(d.ObservedDays, st.ObservedDays)
	}
	d.fpIncr = st.FpIncr
	if got := d.RecomputeDayFingerprint(); got != st.FpIncr {
		return fmt.Errorf("core: restored dataset digest %016x does not match snapshot %016x", got, st.FpIncr)
	}
	return nil
}

func setFrom(keys []string) map[string]bool {
	m := make(map[string]bool, len(keys))
	for _, k := range keys {
		m[k] = true
	}
	return m
}

func daySetFrom(entries []DomainDayEntry) map[string]simclock.Day {
	m := make(map[string]simclock.Day, len(entries))
	for _, e := range entries {
		m[e.Key] = e.Day
	}
	return m
}
