package core

import (
	"testing"

	"repro/internal/brands"
	"repro/internal/simclock"
)

// runSmall runs a miniature end-to-end study once per test binary.
var smallData *Dataset

func small(t *testing.T) *Dataset {
	t.Helper()
	if smallData == nil {
		cfg := TestConfig()
		w := NewWorld(cfg)
		smallData = w.Run()
	}
	return smallData
}

func TestWorldConstruction(t *testing.T) {
	d := small(t)
	w := d.World()
	if len(w.Specs) != 52 {
		t.Fatalf("named campaigns = %d", len(w.Specs))
	}
	if len(w.Tail) != w.Cfg.TailCampaigns {
		t.Fatalf("tail campaigns = %d", len(w.Tail))
	}
	if len(w.Stores) == 0 || w.Web.Domains() == 0 {
		t.Fatal("empty world")
	}
	if w.Classifier == nil || w.CVAccuracy <= 0.3 {
		t.Fatalf("classifier CV accuracy = %v", w.CVAccuracy)
	}
}

func TestStudyProducesPSRs(t *testing.T) {
	d := small(t)
	if d.TotalPSRs() == 0 {
		t.Fatal("no PSRs observed")
	}
	if d.TotalDoorways() == 0 || d.TotalStores() == 0 {
		t.Fatalf("doorways=%d stores=%d", d.TotalDoorways(), d.TotalStores())
	}
	// Every vertical must see some poisoning at some point.
	var poisonedVerticals int
	for _, v := range brands.All() {
		if d.Verticals[v].PSRObservations > 0 {
			poisonedVerticals++
		}
	}
	if poisonedVerticals < 12 {
		t.Fatalf("only %d verticals poisoned", poisonedVerticals)
	}
}

func TestAttributionSplitsKnownAndUnknown(t *testing.T) {
	d := small(t)
	share := d.AttributedShare()
	// Paper: 58% attributed to the 52 campaigns. Demand a majority but not
	// everything (the tail must show up as unknown).
	if share < 0.35 || share > 0.92 {
		t.Fatalf("attributed share = %v", share)
	}
	if len(d.Campaigns) == 0 {
		t.Fatal("no campaigns attributed")
	}
	for name := range d.Campaigns {
		if name == Unknown {
			t.Fatal("unknown bucket must not appear in campaign observations")
		}
		if _, ok := d.GroundTruthSpec(name); !ok {
			t.Fatalf("attributed campaign %q not in roster", name)
		}
	}
}

func TestKeyCollapseVisibleInDataset(t *testing.T) {
	d := small(t)
	key, ok := d.Campaigns["KEY"]
	if !ok {
		t.Skip("KEY not attributed at this scale")
	}
	w := d.World()
	var spec = w.Specs[0]
	for _, s := range w.Specs {
		if s.Name == "KEY" {
			spec = s
		}
	}
	var before, after float64
	for dd := spec.DemotedOn - 20; dd < spec.DemotedOn; dd++ {
		before += key.PSRTop100.At(int(dd))
	}
	for dd := spec.DemotedOn + 10; dd < spec.DemotedOn+30; dd++ {
		after += key.PSRTop100.At(int(dd))
	}
	if before == 0 {
		t.Skip("KEY invisible before demotion at this scale")
	}
	if after > before/2 {
		t.Fatalf("KEY PSRs before=%v after=%v; want collapse", before, after)
	}
}

func TestSeizuresObservedAndReactionsFollow(t *testing.T) {
	d := small(t)
	if len(d.Seizures) == 0 {
		t.Fatal("no seizures in study")
	}
	if len(d.Reactions) == 0 {
		t.Fatal("no campaign reactions")
	}
	// Reactions must re-point to domains that are live store domains.
	w := d.World()
	for _, r := range d.Reactions {
		if _, ok := w.StoreByID(r.StoreID); !ok {
			t.Fatalf("reaction for unknown store %s", r.StoreID)
		}
		if r.NewDomain == "" {
			t.Fatal("reaction with empty domain")
		}
	}
}

func TestPurchasePairCollectedSeries(t *testing.T) {
	d := small(t)
	if len(d.SampledOrders) == 0 {
		t.Fatal("no purchase-pair series")
	}
	var withDelta int
	for _, os := range d.SampledOrders {
		if os.TotalDelta > 0 {
			withDelta++
		}
		for day := 0; day < d.SimDays; day++ {
			if os.Rates.At(day) < 0 {
				t.Fatal("negative order rate")
			}
		}
	}
	if withDelta == 0 {
		t.Fatal("no store accumulated orders")
	}
}

func TestLabelsAppliedWithinPolicyDelay(t *testing.T) {
	d := small(t)
	if len(d.DoorLabeledOn) == 0 {
		t.Skip("no labels at this scale")
	}
	w := d.World()
	for dom, ld := range d.DoorLabeledOn {
		if first, ok := w.Labeler.DetectionArmedOn(dom); ok {
			delta := int(ld - first)
			if delta < 0 || delta > w.Labeler.DelayMaxDays+2 {
				t.Fatalf("label delay for %s = %d days", dom, delta)
			}
		}
	}
}

func TestChurnRecorded(t *testing.T) {
	d := small(t)
	// After the first few days churn must settle low.
	var frac float64
	var n int
	for day := 30; day < d.StudyDays; day++ {
		if d.ChurnTotal.At(day) > 0 {
			frac += d.ChurnNew.At(day) / d.ChurnTotal.At(day)
			n++
		}
	}
	if n == 0 {
		t.Fatal("no churn records")
	}
	if avg := frac / float64(n); avg > 0.15 {
		t.Fatalf("average churn = %v, want low (paper: 1.84%%)", avg)
	}
}

func TestVerticalSeriesBounded(t *testing.T) {
	d := small(t)
	for _, v := range brands.All() {
		vo := d.Verticals[v]
		for day := 0; day < d.SimDays; day++ {
			for _, s := range []float64{
				vo.Top10PoisonedPct.At(day),
				vo.Top100PoisonedPct.At(day),
				vo.PenalizedPct.At(day),
			} {
				if s < 0 || s > 100 {
					t.Fatalf("%s day %d: percentage out of range: %v", v, day, s)
				}
			}
		}
	}
}

func TestTrafficDrivesStoreOrders(t *testing.T) {
	d := small(t)
	w := d.World()
	var totalOrders float64
	for _, st := range w.Stores {
		totalOrders += st.Snapshot().Orders[0:d.SimDays][0]
		for _, o := range st.OrderSeries() {
			totalOrders += o
		}
	}
	if totalOrders == 0 {
		t.Fatal("no customer orders generated")
	}
}

func TestExtendedWindowCoversFigure5(t *testing.T) {
	d := small(t)
	if d.SimDays <= d.StudyDays {
		t.Fatal("extended tail missing")
	}
	w := d.World()
	aug := w.Sim.DayOf(simclock.ExtendedWindow().End)
	if !w.Sim.Contains(aug) {
		t.Fatal("simulation must reach 2014-08-31")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := TestConfig()
	cfg.TermsPerVertical = 3
	cfg.SlotsPerTerm = 20
	a := NewWorld(cfg).Run()
	b := NewWorld(cfg).Run()
	if a.TotalPSRs() != b.TotalPSRs() {
		t.Fatalf("PSR totals differ: %d vs %d", a.TotalPSRs(), b.TotalPSRs())
	}
	if a.TotalStores() != b.TotalStores() || a.TotalDoorways() != b.TotalDoorways() {
		t.Fatal("store/doorway totals differ across identical runs")
	}
	if len(a.Seizures) != len(b.Seizures) {
		t.Fatal("seizure counts differ")
	}
}
