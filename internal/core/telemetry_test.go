package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestTelemetryNeutralFingerprint is the observability layer's core
// contract: attaching a live registry must not perturb the study by one
// bit. The golden fingerprint pinned in faults_test.go must come out of a
// telemetry-on run at GOMAXPROCS=1 and at full parallelism alike —
// telemetry only observes decisions the pipeline already made, it never
// feeds a value (clock reading, counter state, span timing) back into one.
func TestTelemetryNeutralFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}

	serialCfg := smallConfig()
	serialCfg.ObserveWorkers = 1
	serialCfg.CrawlWorkers = 1
	serialCfg.Telemetry = telemetry.New()
	prev := runtime.GOMAXPROCS(1)
	serial := NewWorld(serialCfg).Run()
	runtime.GOMAXPROCS(prev)
	if fp := serial.Fingerprint(); fp != goldenSmallFingerprint {
		t.Errorf("telemetry-on serial fingerprint = %#x, want golden %#x", fp, uint64(goldenSmallFingerprint))
	}

	parCfg := smallConfig()
	parCfg.ObserveWorkers = runtime.NumCPU()
	parCfg.CrawlWorkers = runtime.NumCPU()
	parCfg.Telemetry = telemetry.New()
	if fp := NewWorld(parCfg).Run().Fingerprint(); fp != goldenSmallFingerprint {
		t.Errorf("telemetry-on parallel fingerprint = %#x, want golden %#x", fp, uint64(goldenSmallFingerprint))
	}
}

// TestTelemetryCountersDeterministic pins the counters themselves: with
// faults off, every decision the pipeline makes is deterministic, so the
// decision counters in the snapshot must be identical between a 1-worker
// and an 8-worker run. Wall-clock tallies (the *_ns_total pool utilisation
// counters) are excluded — they measure this machine, not the study. (Under
// fault injection even decision counts do NOT hold — failed fetches yield
// uncached Unknown verdicts, so the number of fetch chains depends on crawl
// scheduling — which is why this test runs faults-off.)
func TestTelemetryCountersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}

	runWith := func(workers int) map[string]int64 {
		cfg := smallConfig()
		cfg.ObserveWorkers = workers
		cfg.CrawlWorkers = workers
		cfg.Telemetry = telemetry.New()
		NewWorld(cfg).Run()
		return cfg.Telemetry.Snapshot().Counters
	}

	// timing reports whether a counter tallies nanoseconds of wall clock.
	timing := func(name string) bool { return strings.HasSuffix(name, "_ns_total") }

	serial := runWith(1)
	par := runWith(8)
	if len(serial) == 0 {
		t.Fatal("telemetry-on run recorded no counters")
	}
	compared := 0
	for name, want := range serial {
		if timing(name) {
			continue
		}
		compared++
		if got, ok := par[name]; !ok || got != want {
			t.Errorf("counter %s: serial=%d parallel=%d (present=%v)", name, want, got, ok)
		}
	}
	if compared == 0 {
		t.Fatal("no decision counters to compare")
	}
	for name := range par {
		if _, ok := serial[name]; !ok {
			t.Errorf("counter %s present only in the parallel run", name)
		}
	}
}

// errAfter is a context whose Err starts failing after n polls, which lets
// the cancellation tests hit an exact day boundary deterministically
// (RunContext polls Err once per day).
type errAfter struct {
	context.Context
	polls, n int
}

var errTripped = errors.New("tripped")

func (c *errAfter) Err() error {
	c.polls++
	if c.polls > c.n {
		return errTripped
	}
	return nil
}

// TestRunContextCancellation checks the day-boundary cancellation contract:
// a cancelled run returns a coherent partial dataset (every day in
// [0, DaysRun) fully committed), and a later RunContext on the same world
// resumes from the cursor and converges to the exact uninterrupted result.
func TestRunContextCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}

	cfg := smallConfig()
	w := NewWorld(cfg)

	const daysBefore = 5
	ctx := &errAfter{Context: context.Background(), n: daysBefore}
	data, err := w.RunContext(ctx)
	if !errors.Is(err, errTripped) {
		t.Fatalf("RunContext error = %v, want errTripped", err)
	}
	if data == nil {
		t.Fatal("cancelled RunContext returned a nil dataset")
	}
	if data.DaysRun != daysBefore {
		t.Fatalf("DaysRun = %d, want %d", data.DaysRun, daysBefore)
	}

	// Resume with a live context: the world's cursor continues from the
	// first unrun day and the finished dataset must be bit-identical to an
	// uninterrupted run of the same config.
	full, err := w.RunContext(context.Background())
	if err != nil {
		t.Fatalf("resumed RunContext error = %v", err)
	}
	if full.DaysRun != w.Sim.Days() {
		t.Fatalf("resumed DaysRun = %d, want %d", full.DaysRun, w.Sim.Days())
	}
	want := NewWorld(smallConfig()).Run().Fingerprint()
	if got := full.Fingerprint(); got != want {
		t.Fatalf("resumed fingerprint = %#x, uninterrupted = %#x", got, want)
	}
}

// TestDaysRunExcludedFromFingerprint guards the deliberate design choice
// that lets a resumed run hash equal to an uninterrupted one: how far the
// runner got is runner state, not observed data.
func TestDaysRunExcludedFromFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d := NewWorld(smallConfig()).Run()
	fp := d.Fingerprint()
	d.DaysRun = 1
	if d.Fingerprint() != fp {
		t.Fatal("DaysRun must not be folded into Fingerprint")
	}
}
