package core

import (
	"repro/internal/brands"
	"repro/internal/campaign"
	"repro/internal/store"
)

// vertSnapshot is one vertical's read-only view of the world's wiring, built
// once the wiring is final. The observe phase runs one goroutine per
// vertical, and before this snapshot existed every worker resolved doorway
// and store domains through the world's global maps — a doorway lookup was
// even a double hop (doorByDom, then doorTargets). The snapshot collapses
// both paths into small per-vertical maps holding only the domains this
// vertical's SERPs can surface, so parallel workers walk private,
// cache-resident tables instead of hashing into the full cross-vertical
// namespace.
//
// Snapshots are views, not copies of truth: every entry is derived from the
// global maps, and the lookup helpers fall back to those maps on a miss, so
// a snapshot can never answer differently from the state it mirrors. Domain
// membership is static — stores pre-register their backup domains at
// construction and rotation moves among them, doorway domains never change —
// which is why a single snapshot point after NewWorld's wiring suffices; the
// world rebuilds all snapshots via snapshotVerticals if that ever changes.
//
// The snapshot also pre-computes this vertical's incremental-fingerprint
// atoms (see fingerprint_incr.go) so the per-slot digest updates in the
// observe hot loop are single table-free adds.
type vertSnapshot struct {
	w *World
	v brands.Vertical

	// doorStores maps a doorway domain to its assigned store; doorIDStores
	// is the same relation keyed by doorway ID (the traffic path has the ID
	// in hand, the observe path only the domain). Doorways with no assigned
	// store are absent.
	doorStores   map[string]*store.Store
	doorIDStores map[string]*store.Store
	// stores maps every domain (launch + backups) of a store reachable from
	// this vertical's doorways to the store.
	stores map[string]*store.Store
	// watched holds all watched case-study store IDs (the set is tiny and
	// global, so every vertical carries the full copy).
	watched map[string]bool

	// Incremental-digest constants for this vertical: whole atoms for the
	// unit counters, prefix states for sets and series (see
	// fingerprint_incr.go for the atom grammar).
	hPSR, hLabeledObs, hLabelEligible          uint64
	pfxDoorsSeen, pfxStoresSeen, pfxCampsSeen  uint64
	pfxTop10Pct, pfxTop100Pct, pfxPenalizedPct uint64
}

// snapshotVerticals (re)builds the per-vertical observe snapshots from the
// world's global wiring. It must run after doorway targets and the dataset's
// watched-store set are final; NewWorld calls it as its last wiring step.
func (w *World) snapshotVerticals() {
	w.vertSnaps = make(map[brands.Vertical]*vertSnapshot, len(brands.All()))
	watched := make(map[string]bool, len(w.Data.WatchedPSRs))
	for id := range w.Data.WatchedPSRs {
		watched[id] = true
	}
	for _, v := range brands.All() {
		w.vertSnaps[v] = &vertSnapshot{
			w:               w,
			v:               v,
			doorStores:      make(map[string]*store.Store),
			doorIDStores:    make(map[string]*store.Store),
			stores:          make(map[string]*store.Store),
			watched:         watched,
			hPSR:            atomCounter(v, "psr"),
			hLabeledObs:     atomCounter(v, "labeled"),
			hLabelEligible:  atomCounter(v, "eligible"),
			pfxDoorsSeen:    setPfx(v, "doorways"),
			pfxStoresSeen:   setPfx(v, "stores"),
			pfxCampsSeen:    setPfx(v, "campaigns"),
			pfxTop10Pct:     vertSeriesPfx(v, "top10pct"),
			pfxTop100Pct:    vertSeriesPfx(v, "top100pct"),
			pfxPenalizedPct: vertSeriesPfx(v, "penalizedpct"),
		}
	}
	for _, dep := range w.Deps {
		for _, dw := range dep.Doorways {
			st := w.doorTargets[dw.ID]
			if st == nil {
				continue
			}
			snap := w.vertSnaps[dw.Vertical]
			snap.doorStores[dw.Domain] = st
			snap.doorIDStores[dw.ID] = st
			for _, dom := range st.Dep.Domains {
				snap.stores[dom] = st
			}
		}
	}
}

// doorTarget resolves a doorway domain to its assigned store, or nil. The
// fast path is this vertical's private table; a miss falls back to the
// global double hop so the answer is always exactly the global maps'.
func (s *vertSnapshot) doorTarget(domain string) *store.Store {
	if st, ok := s.doorStores[domain]; ok {
		return st
	}
	var dw *campaign.Doorway
	if dw = s.w.doorByDom[domain]; dw == nil {
		return nil
	}
	return s.w.doorTargets[dw.ID]
}

// doorTargetByID is doorTarget keyed by doorway ID (the traffic path).
func (s *vertSnapshot) doorTargetByID(id string) *store.Store {
	if st, ok := s.doorIDStores[id]; ok {
		return st
	}
	return s.w.doorTargets[id]
}

// storeByDomain resolves any of a store's domains to the store, falling back
// to the world's global domain map on a snapshot miss.
func (s *vertSnapshot) storeByDomain(domain string) (*store.Store, bool) {
	if st, ok := s.stores[domain]; ok {
		return st, true
	}
	st, ok := s.w.storeByDom[domain]
	return st, ok
}
