package core

import (
	"runtime"
	"testing"

	"repro/internal/faults"
)

// snapshotAt runs a fresh world up to (but not including) day `day` and
// snapshots it — exactly the state a checkpoint written after day-1 holds.
func snapshotAt(t *testing.T, cfg Config, day int) *StudySnapshot {
	t.Helper()
	w := NewWorld(cfg)
	if day > w.Sim.Days() {
		t.Fatalf("cut day %d beyond simulation window %d", day, w.Sim.Days())
	}
	for int(w.nextDay) < day {
		d := w.nextDay
		w.RunDay(d)
		w.nextDay = d + 1
	}
	return w.Snapshot()
}

// resumeAndFinish restores a snapshot onto a fresh world and runs it to
// completion.
func resumeAndFinish(t *testing.T, cfg Config, snap *StudySnapshot) *Dataset {
	t.Helper()
	w := NewWorld(cfg)
	if err := w.RestoreSnapshot(snap); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	return w.Run()
}

// TestSnapshotResumeMatchesGolden is the checkpoint layer's core contract:
// cut a faults-off study at any day boundary, rebuild a world from nothing
// but the snapshot, run it out — and the dataset fingerprint equals the
// golden value of an uninterrupted run. Cut points cover the edges (before
// day 0, after the final day) and the middle.
func TestSnapshotResumeMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallConfig()
	days := NewWorld(cfg).Sim.Days()
	for _, cut := range []int{0, 1, days / 2, days - 1, days} {
		snap := snapshotAt(t, cfg, cut)
		if int(snap.NextDay) != cut {
			t.Fatalf("snapshot at %d has NextDay %d", cut, snap.NextDay)
		}
		data := resumeAndFinish(t, cfg, snap)
		if got := data.Fingerprint(); uint64(got) != goldenSmallFingerprint {
			t.Errorf("resume from day %d: fingerprint %#x != golden %#x",
				cut, got, uint64(goldenSmallFingerprint))
		}
	}
}

// TestSnapshotResumeFaultsEnabled repeats the cut-and-resume check under
// fault injection, where the resilient fetcher's circuit breakers and the
// coverage mask join the snapshot. No golden constant exists for this
// profile, so the oracle is an uninterrupted run of the same config.
func TestSnapshotResumeFaultsEnabled(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallConfig()
	fc, err := faults.Profile("moderate")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fc
	want := NewWorld(cfg).Run().Fingerprint()

	days := NewWorld(cfg).Sim.Days()
	snap := snapshotAt(t, cfg, days/3)
	data := resumeAndFinish(t, cfg, snap)
	if got := data.Fingerprint(); got != want {
		t.Fatalf("faults-on resume fingerprint %#x != uninterrupted %#x", got, want)
	}
}

// TestSnapshotResumeAcrossWorkerCounts proves a snapshot is portable across
// scheduling configurations: a snapshot cut from a serial GOMAXPROCS=1 run
// resumes on a fully parallel world (different worker counts are excluded
// from the config hash) and still lands on the golden fingerprint.
func TestSnapshotResumeAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	serialCfg := smallConfig()
	serialCfg.ObserveWorkers = 1
	serialCfg.CrawlWorkers = 1
	prev := runtime.GOMAXPROCS(1)
	days := NewWorld(serialCfg).Sim.Days()
	snap := snapshotAt(t, serialCfg, days/2)
	runtime.GOMAXPROCS(prev)

	parCfg := smallConfig()
	parCfg.ObserveWorkers = runtime.NumCPU()
	parCfg.CrawlWorkers = runtime.NumCPU()
	data := resumeAndFinish(t, parCfg, snap)
	if got := data.Fingerprint(); uint64(got) != goldenSmallFingerprint {
		t.Fatalf("serial→parallel resume fingerprint %#x != golden %#x",
			got, uint64(goldenSmallFingerprint))
	}
}

// TestRestoreSnapshotRejectsConfigMismatch: a snapshot is bound to the
// simulation-shaping config; restoring onto a world built from a different
// one must fail loudly, not silently diverge.
func TestRestoreSnapshotRejectsConfigMismatch(t *testing.T) {
	cfg := smallConfig()
	snap := snapshotAt(t, cfg, 1)

	other := cfg
	other.Seed++
	if err := NewWorld(other).RestoreSnapshot(snap); err == nil {
		t.Fatal("restore accepted a snapshot from a different seed")
	}

	// Scheduling knobs are excluded from the hash on purpose.
	sched := cfg
	sched.ObserveWorkers = 7
	sched.CrawlWorkers = 3
	if err := NewWorld(sched).RestoreSnapshot(snap); err != nil {
		t.Fatalf("restore rejected a worker-count-only change: %v", err)
	}
}

// TestRestoreSnapshotRequiresFreshWorld: restore overwrites post-
// construction state wholesale, which is only coherent on a world that has
// not run a day yet.
func TestRestoreSnapshotRequiresFreshWorld(t *testing.T) {
	cfg := smallConfig()
	snap := snapshotAt(t, cfg, 1)
	w := NewWorld(cfg)
	w.RunDay(0)
	w.nextDay = 1
	if err := w.RestoreSnapshot(snap); err == nil {
		t.Fatal("restore accepted a world that already ran a day")
	}
}

// TestRestoreSnapshotRejectsTamperedDataset: the dataset section carries
// the incremental day fingerprint, and restore recomputes the digest from
// the restored facts. Payload tampering that survives the envelope
// checksum (or hits a future schema drift) is still caught here.
func TestRestoreSnapshotRejectsTamperedDataset(t *testing.T) {
	cfg := smallConfig()
	days := NewWorld(cfg).Sim.Days()
	snap := snapshotAt(t, cfg, days/2)
	snap.Dataset.ChurnNew[0]++
	if err := NewWorld(cfg).RestoreSnapshot(snap); err == nil {
		t.Fatal("restore accepted a snapshot whose facts disagree with its digest")
	}
}
