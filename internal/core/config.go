// Package core is the study driver: it assembles the synthetic world
// (campaign infrastructure, web, search engine, interventions, demand),
// runs it day by day while the measurement pipeline — crawler, classifier,
// purchase-pair sampler — observes it, and produces the longitudinal
// dataset every table and figure of the paper is computed from.
package core

import (
	"repro/internal/faults"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// Config sizes and seeds a study. The zero value is not useful; start from
// DefaultConfig or TestConfig.
type Config struct {
	// Seed drives every random choice; a given (Seed, Config) reproduces
	// the entire study bit-for-bit.
	Seed uint64
	// Scale multiplies infrastructure sizes (doorways, stores, supplier
	// records). 1.0 is paper scale.
	Scale float64
	// TermsPerVertical and SlotsPerTerm size the crawl (paper: 100 × 100).
	TermsPerVertical int
	SlotsPerTerm     int
	// TailCampaigns is how many unlabeled long-tail campaigns operate
	// alongside the 52 classified ones.
	TailCampaigns int
	// SampleStoresPerCampaign bounds purchase-pair targets per campaign.
	SampleStoresPerCampaign int
	// SeedDocsTarget is the hand-labeled corpus size for classifier
	// training (paper: 491).
	SeedDocsTarget int
	// UnknownThreshold is the classifier confidence below which a store is
	// left unattributed.
	UnknownThreshold float64
	// CrawlRecheckDays controls how often poisoned domains are re-verified.
	CrawlRecheckDays int
	// CrawlWorkers bounds crawl parallelism.
	CrawlWorkers int
	// ObserveWorkers bounds how many verticals the day pipeline observes
	// concurrently (and how many traffic shards aggregate in parallel).
	// 0 means GOMAXPROCS. Output is bit-identical at any setting: side
	// effects are merged in fixed vertical order and order draws use
	// per-store RNG substreams.
	ObserveWorkers int
	// VanGogh and RenderOnDagger toggle the rendering crawlers (ablations).
	VanGogh        bool
	RenderOnDagger bool
	// SupplierRecords sizes the §4.5 shipment dataset before Scale.
	SupplierRecords int
	// ExtendedTail runs the simulation past the crawl window through
	// August 2014 so the Figure 5 case study has data.
	ExtendedTail bool
	// MaxDays, when > 0, caps how many simulation days RunContext executes:
	// the study runs days [0, min(MaxDays, window)) and then completes
	// normally — finalized dataset, no error — instead of running the whole
	// window. 0 (the default) runs the full window. Like the worker counts,
	// MaxDays is a driving knob, not simulation shape: each day that does
	// run is bit-identical to the same day of an uncapped study, so it is
	// excluded from ConfigHash and a checkpointed study may resume under a
	// different cap.
	MaxDays int
	// ReactiveSeizures swaps the firms' bulk periodic sweeps for small
	// frequent reactive filings (the abl-reactive ablation).
	ReactiveSeizures bool
	// BreakBank, if set, disables the named acquiring bank on BreakBankDay
	// — the payment-level intervention the paper flags as promising future
	// work (§4.3.2).
	BreakBank    string
	BreakBankDay int
	// Faults configures deterministic fault injection against the crawl
	// pipeline (timeouts, 5xx, truncated bodies, dead-domain days, SERP
	// rate limits, whole-day outages). The zero value disables injection
	// and leaves the pipeline bit-identical to a fault-free build; see
	// faults.Profile for the study presets.
	Faults faults.Config
	// Telemetry, when non-nil, receives the study's runtime metrics and
	// stage spans (see internal/telemetry). Telemetry is observational
	// only: no simulation or measurement decision reads it, so a study's
	// Fingerprint is identical with it nil or set. nil (the default) is
	// the no-op sink — every instrumentation point reduces to a nil check.
	Telemetry *telemetry.Registry
}

// DefaultConfig is the paper-scale configuration.
func DefaultConfig() Config {
	return Config{
		Seed:                    1,
		Scale:                   1.0,
		TermsPerVertical:        100,
		SlotsPerTerm:            100,
		TailCampaigns:           34,
		SampleStoresPerCampaign: 3,
		SeedDocsTarget:          491,
		UnknownThreshold:        0.42,
		CrawlRecheckDays:        4,
		CrawlWorkers:            8,
		VanGogh:                 true,
		RenderOnDagger:          true,
		SupplierRecords:         279000,
		ExtendedTail:            true,
	}
}

// TestConfig is a miniature world for unit and integration tests: the same
// moving parts at a fraction of the size.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.02
	cfg.TermsPerVertical = 6
	cfg.SlotsPerTerm = 30
	cfg.TailCampaigns = 10
	cfg.SeedDocsTarget = 200
	cfg.SupplierRecords = 3000
	return cfg
}

// Windows returns the crawl window and the simulation window (which may
// extend past the crawl for the Figure 5 tail).
func (c Config) Windows() (study, sim simclock.Window) {
	study = simclock.StudyWindow()
	if c.ExtendedTail {
		return study, simclock.ExtendedWindow()
	}
	return study, study
}
