package core

import (
	"runtime"
	"testing"

	"repro/internal/faults"
	"repro/internal/simclock"
)

// runIncrChecked runs a faults-moderate study day by day, asserting after
// every committed day — not just at the end — that the incremental
// accumulator equals the from-scratch recompute over the same atom grammar.
// Any mutation path that forgets to fold its atom, or folds it twice,
// surfaces on the exact day it first diverges.
func runIncrChecked(t *testing.T, workers int) (*Dataset, uint64) {
	t.Helper()
	cfg := smallConfig()
	fcfg, err := faults.Profile("moderate")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fcfg
	cfg.ObserveWorkers = workers
	cfg.CrawlWorkers = workers
	w := NewWorld(cfg)
	if got, want := w.Data.DayFingerprint(), w.Data.RecomputeDayFingerprint(); got != want {
		t.Fatalf("pre-run: incremental %#x != recompute %#x", got, want)
	}
	for d := 0; d < w.Sim.Days(); d++ {
		w.RunDay(simclock.Day(d))
		if got, want := w.Data.DayFingerprint(), w.Data.RecomputeDayFingerprint(); got != want {
			t.Fatalf("day %d (workers=%d): incremental %#x != recompute %#x",
				d, workers, got, want)
		}
	}
	w.Finalize()
	if got, want := w.Data.DayFingerprint(), w.Data.RecomputeDayFingerprint(); got != want {
		t.Fatalf("after finalize (workers=%d): incremental %#x != recompute %#x",
			workers, got, want)
	}
	return w.Data, w.Data.DayFingerprint()
}

func TestIncrementalFingerprintMatchesFull(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prev := runtime.GOMAXPROCS(1)
	serialData, serial := runIncrChecked(t, 1)
	runtime.GOMAXPROCS(prev)
	parData, par := runIncrChecked(t, runtime.NumCPU())

	// The day fingerprint must be as scheduling-independent as the full
	// one: bit-identical between one worker at GOMAXPROCS=1 and a full
	// fan-out, and the existing oracle must agree the datasets match.
	if serial != par {
		t.Errorf("day fingerprints differ: serial=%#x parallel=%#x", serial, par)
	}
	if sf, pf := serialData.Fingerprint(), parData.Fingerprint(); sf != pf {
		t.Errorf("full fingerprints differ: serial=%#x parallel=%#x", sf, pf)
	}
}

// TestDayFingerprintSensitive guards against the trivial failure mode of an
// accumulator that never moves: a committed day must change the digest.
func TestDayFingerprintSensitive(t *testing.T) {
	cfg := smallConfig()
	w := NewWorld(cfg)
	before := w.Data.DayFingerprint()
	w.RunDay(0)
	if after := w.Data.DayFingerprint(); after == before {
		t.Fatalf("day fingerprint unchanged by a committed day (%#x)", after)
	}
}

// TestDayFingerprintSurvivesResume asserts the replace-aware finalize path:
// cancelling, finalizing, resuming and re-finalizing must land on the same
// digest as an uninterrupted run (Finalize overwrites DoorLabeledOn and
// SampledOrders entries wholesale on the second pass).
func TestDayFingerprintSurvivesResume(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallConfig()

	w := NewWorld(cfg)
	half := w.Sim.Days() / 2
	for d := 0; d < half; d++ {
		w.RunDay(simclock.Day(d))
	}
	w.Finalize() // mid-run checkpoint, as a cancelled RunContext would
	for d := half; d < w.Sim.Days(); d++ {
		w.RunDay(simclock.Day(d))
	}
	w.Finalize()
	if got, want := w.Data.DayFingerprint(), w.Data.RecomputeDayFingerprint(); got != want {
		t.Fatalf("after resume: incremental %#x != recompute %#x", got, want)
	}

	uninterrupted := NewWorld(cfg).Run()
	if got, want := w.Data.DayFingerprint(), uninterrupted.DayFingerprint(); got != want {
		t.Errorf("resumed digest %#x != uninterrupted %#x", got, want)
	}
}
