package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/brands"
	"repro/internal/campaign"
	"repro/internal/classify"
	"repro/internal/cnc"
	"repro/internal/crawler"
	"repro/internal/faults"
	"repro/internal/htmlgen"
	"repro/internal/intervention"
	"repro/internal/parallel"
	"repro/internal/purchase"
	"repro/internal/rng"
	"repro/internal/searchsim"
	"repro/internal/simclock"
	"repro/internal/simweb"
	"repro/internal/store"
	"repro/internal/supplier"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

// SupplierDomain is where the §4.5 fulfilment partner's tracking site
// lives.
const SupplierDomain = "track-supplier-cn.example"

// World is one fully wired simulated ecosystem plus its measurement
// apparatus.
type World struct {
	Cfg   Config
	Study simclock.Window // crawl window
	Sim   simclock.Window // simulation window (>= Study)

	R     *rng.Source
	Gen   *htmlgen.Generator
	Specs []*campaign.Spec // 52 named campaigns
	Tail  []*campaign.Spec // unlabeled long tail
	Deps  []*campaign.Deployment

	Web     *simweb.Web
	Engine  *searchsim.Engine
	Stores  []*store.Store
	Traffic traffic.Model

	Crawler *crawler.Crawler
	Labeler *intervention.Labeler
	Seizure *intervention.SeizureEngine
	Sampler *purchase.Sampler

	// Faults is the deterministic fault plan the crawl pipeline runs
	// against, nil when Config.Faults is disabled (the common case: every
	// fault check is a nil-receiver no-op, so the fault-free hot path pays
	// nothing).
	Faults *faults.Plan
	// Resilient is the retry/circuit-breaker fetch layer mounted between
	// fault injection and the detector; nil when faults are disabled.
	Resilient *crawler.ResilientFetcher

	Classifier *classify.Model
	SeedDocs   []classify.Doc
	CVAccuracy float64

	Supplier *supplier.Dataset

	storesByID  map[string]*store.Store
	storeByDom  map[string]*store.Store // any domain (incl. backups) -> store
	campStores  map[string][]*store.Store
	vertStores  map[string][]*store.Store // campaignKey|vertical -> stores
	doorTargets map[string]*store.Store   // doorway ID -> assigned store
	doorByDom   map[string]*campaign.Doorway

	// vertSnaps are the per-vertical read-only views of the wiring above,
	// built once by snapshotVerticals after NewWorld finishes wiring; the
	// parallel observe and traffic phases resolve domains through them
	// instead of the global cross-vertical maps (see snapshot.go).
	vertSnaps map[brands.Vertical]*vertSnapshot

	// attribution caches Attribute's per-domain verdicts. Guarded by attrMu:
	// the parallel observe phase classifies store domains from several
	// vertical goroutines at once. Verdicts are deterministic per (domain,
	// day), so concurrent first calls always cache the same value.
	attrMu      sync.Mutex
	attribution map[string]string // store domain -> campaign name or "" (unknown)

	targets     []purchase.Target // purchase-pair targets, built lazily
	targetsOnce sync.Once         // guards the lazy build (see purchaseTargets)

	// obs and shards are the day pipeline's reusable per-vertical buffers
	// (see RunDay and applyTraffic).
	obs    []*dayObservation
	shards []*trafficShard

	// Telemetry handles, resolved once from Cfg.Telemetry at construction.
	// A nil registry yields nil handles throughout, so with telemetry off
	// every instrumentation point is a nil-check no-op.
	tel        *telemetry.Registry
	stDay      *telemetry.Stage
	stObserve  *telemetry.Stage
	stObsVert  *telemetry.Stage
	stCommit   *telemetry.Stage
	stTraffic  *telemetry.Stage
	cDays      *telemetry.Counter
	cOutages   *telemetry.Counter
	cSlots     *telemetry.Counter
	cLostSlots *telemetry.Counter
	// obsPool/trafPool stay nil interfaces when telemetry is off, which
	// keeps the worker pools on their unobserved (clock-free) hot path.
	obsPool  parallel.PoolObserver
	trafPool parallel.PoolObserver

	// nextDay is RunContext's resume cursor: the first day not yet run.
	nextDay simclock.Day

	// OnDayStart, when set, is called by RunContext immediately before each
	// day executes, while the world is still quiescent. The service plane
	// hooks here to gate day execution on a shared worker budget; blocking
	// inside the hook delays the day but cannot change its result. The hook
	// must not mutate the world.
	OnDayStart func(d simclock.Day)

	// OnDayEnd, when set, is called by RunContext after each day fully
	// commits and the resume cursor has advanced past it — the exact moment
	// the world is quiescent and Snapshot captures a coherent study. The
	// checkpoint layer hooks here; the hook must not mutate the world.
	OnDayEnd func(d simclock.Day)

	Data *Dataset
}

// NewWorld builds the ecosystem: campaign roster and tail, deployments,
// stores, the web, the search engine, interventions, the supplier site,
// and the trained classifier.
func NewWorld(cfg Config) *World {
	study, sim := cfg.Windows()
	r := rng.New(cfg.Seed)
	w := &World{
		Cfg:   cfg,
		Study: study,
		Sim:   sim,
		R:     r,
		Gen:   htmlgen.New(r),
		Web:   simweb.NewWeb(),

		storesByID:  make(map[string]*store.Store),
		storeByDom:  make(map[string]*store.Store),
		campStores:  make(map[string][]*store.Store),
		vertStores:  make(map[string][]*store.Store),
		doorTargets: make(map[string]*store.Store),
		doorByDom:   make(map[string]*campaign.Doorway),
		attribution: make(map[string]string),
	}
	w.Traffic = traffic.Default()

	// Resolve telemetry handles up front (all nil-safe when the registry
	// is nil). The pool observers are set only with telemetry on so the
	// worker pools see a nil interface — not a typed nil — and skip their
	// timing instrumentation entirely.
	w.tel = cfg.Telemetry
	w.stDay = w.tel.Stage("day")
	w.stObserve = w.tel.Stage("observe")
	w.stObsVert = w.tel.Stage("observe_vertical")
	w.stCommit = w.tel.Stage("commit")
	w.stTraffic = w.tel.Stage("traffic")
	w.cDays = w.tel.Counter("core_days_total")
	w.cOutages = w.tel.Counter("core_outage_days_total")
	w.cSlots = w.tel.Counter("core_slots_observed_total")
	w.cLostSlots = w.tel.Counter("core_slots_lost_total")
	if w.tel != nil {
		w.obsPool = w.tel.Pool("observe")
		w.trafPool = w.tel.Pool("traffic")
	}

	// Campaign roster + tail, deployed into a shared domain namespace.
	w.Specs = campaign.Roster(study)
	w.Tail = campaign.TailRoster(study, cfg.TailCampaigns)
	all := append(append([]*campaign.Spec{}, w.Specs...), w.Tail...)
	w.Deps = campaign.DeployAll(r.Sub("deploy"), all, cfg.Scale)

	// Store runtimes and web mounting.
	days := sim.Days()
	sr := r.Sub("stores")
	for _, dep := range w.Deps {
		for _, sd := range dep.Stores {
			st := store.New(sd, sr, days)
			w.Stores = append(w.Stores, st)
			w.storesByID[st.ID()] = st
			key := dep.Spec.Key()
			w.campStores[key] = append(w.campStores[key], st)
			vk := vertKey(key, sd.Vertical)
			w.vertStores[vk] = append(w.vertStores[vk], st)
			site := &simweb.StoreSite{Store: st, Gen: w.Gen, Window: sim}
			for _, dom := range sd.Domains {
				w.Web.Register(dom, site)
				w.storeByDom[dom] = st
			}
		}
	}

	// Term sets and doorway mounting.
	termSets := make(map[brands.Vertical][]string)
	for _, v := range brands.All() {
		termSets[v] = brands.Terms(r.Sub("terms"), v, cfg.TermsPerVertical).Terms
	}
	dr := r.Sub("doorways")
	for _, dep := range w.Deps {
		for _, dw := range dep.Doorways {
			w.doorByDom[dw.Domain] = dw
			st := w.assignStore(dr, dw)
			w.doorTargets[dw.ID] = st
			site := &simweb.DoorwaySite{
				Doorway:    dw,
				Gen:        w.Gen,
				Terms:      sampleTerms(dr, termSets[dw.Vertical], 6),
				JSRedirect: dr.Bool(0.45),
			}
			if st != nil {
				theStore := st
				site.Resolve = func(d simclock.Day) string {
					dom := theStore.CurrentDomain(d)
					if dom == "" {
						return ""
					}
					return "http://" + dom + "/"
				}
			} else {
				site.Resolve = func(simclock.Day) string { return "" }
			}
			w.Web.Register(dw.Domain, site)
		}
	}

	// Benign long tail: lazily materialised.
	gen := w.Gen
	w.Web.SetFallback(func(domain string) simweb.Site {
		return &simweb.BenignSite{Domain: domain, Term: "shopping", Gen: gen}
	})

	// Search engine over the deployments.
	scfg := searchsim.DefaultConfig()
	scfg.TermsPerVertical = cfg.TermsPerVertical
	scfg.SlotsPerTerm = cfg.SlotsPerTerm
	w.Engine = searchsim.New(scfg, r, w.Deps, termSets)

	// Measurement apparatus. With fault injection enabled, the detector's
	// fetch path is web -> fault injection -> retries/circuit breakers;
	// with it disabled the detector talks to the web directly — the exact
	// pre-fault call chain, so fault-free runs stay bit-identical and pay
	// zero overhead. (Note faults degrade only the *measurement* — the
	// crawler's view. Users, interventions and the purchase sampler keep
	// operating: the paper's crawler lost days while Google and the
	// campaigns did not.)
	var crawlFetch simweb.Fetcher = w.Web
	if cfg.Faults.Enabled() {
		w.Faults = faults.NewPlan(r, cfg.Faults)
		w.Faults.Instrument(w.tel)
		w.Resilient = crawler.NewResilientFetcher(
			faults.Wrap(w.Faults, w.Web),
			crawler.DefaultResilience(),
			r.Sub("crawler/backoff").Uint64(),
		)
		w.Resilient.Instrument(w.tel)
		crawlFetch = w.Resilient
	}
	det := crawler.NewDetector(crawlFetch)
	det.Opts.EnableVanGogh = cfg.VanGogh
	det.Opts.RenderOnDagger = cfg.RenderOnDagger
	w.Crawler = crawler.New(det)
	w.Crawler.RecheckDays = cfg.CrawlRecheckDays
	w.Crawler.Workers = cfg.CrawlWorkers
	w.Crawler.Instrument(w.tel)
	w.Sampler = purchase.NewSampler(w.Web)

	// Interventions.
	w.Labeler = intervention.NewLabeler()
	firms := intervention.Firms()
	if cfg.ReactiveSeizures {
		firms = intervention.ReactiveFirms()
	}
	w.Seizure = intervention.NewSeizureEngineWithFirms(r, study, w.Stores, firms)
	w.Seizure.OnSeize = w.onSeize
	w.Seizure.OnReact = w.onReact

	// C&C hosts: every named campaign runs a directive gate over its store
	// fleet (§3.1.2's infiltration surface).
	for _, dep := range w.Deps {
		if dep.Spec.IsTail() {
			continue
		}
		key := dep.Spec.Key()
		w.Web.Register(cnc.Domain(key), cnc.NewSite(dep.Spec, w.campStores[key]))
	}

	// Payment-level intervention: disable an acquiring bank on a given day.
	if cfg.BreakBank != "" {
		for _, st := range w.Stores {
			if st.Processor.Name == cfg.BreakBank {
				st.DisableProcessor(simclock.Day(cfg.BreakBankDay))
			}
		}
	}

	// Supplier dataset and site.
	n := int(float64(cfg.SupplierRecords) * cfg.Scale)
	if n < 200 {
		n = 200
	}
	w.Supplier = supplier.Generate(r, n)
	w.Web.Register(SupplierDomain, supplier.NewSite(w.Supplier))

	// Classifier: train on a hand-labeled seed sampled from the named
	// campaigns only (the tail is, by construction, unlabeled).
	w.trainClassifier()

	w.Data = NewDataset(w)
	w.watchCaseStudyStores()
	w.snapshotVerticals()
	return w
}

// watchCaseStudyStores arms per-store PSR tracking for the scripted
// Figure 5 (BIGLOVE coco*.com) and Figure 6 (PHP?P= international) stores,
// and makes their analytics publicly readable (§4.4 collected AWStats for
// exactly such stores).
func (w *World) watchCaseStudyStores() {
	days := w.Sim.Days()
	for _, dep := range w.Deps {
		var n int
		switch dep.Spec.Name {
		case "BIGLOVE":
			n = 1
		case "PHP?P=":
			n = 4
		default:
			continue
		}
		for i := 0; i < n && i < len(dep.Stores); i++ {
			st := w.storesByID[dep.Stores[i].ID]
			st.AWStatsPublic = true
			w.Data.WatchedPSRs[st.ID()] = &WatchedStore{
				StoreID: st.ID(),
				Top100:  make([]float64, days),
				Top10:   make([]float64, days),
			}
		}
	}
}

func vertKey(campaignKey string, v brands.Vertical) string {
	return fmt.Sprintf("%s|%d", campaignKey, int(v))
}

// assignStore picks the storefront a doorway forwards to: one of its
// campaign's stores for the doorway's vertical, or any campaign store as a
// fallback.
func (w *World) assignStore(r *rng.Source, dw *campaign.Doorway) *store.Store {
	key := dw.Campaign.Key()
	pool := w.vertStores[vertKey(key, dw.Vertical)]
	if len(pool) == 0 {
		pool = w.campStores[key]
	}
	if len(pool) == 0 {
		return nil
	}
	return pool[r.Intn(len(pool))]
}

func sampleTerms(r *rng.Source, terms []string, n int) []string {
	if len(terms) <= n {
		return terms
	}
	start := r.Intn(len(terms) - n)
	return terms[start : start+n]
}

// onSeize is the world's response to a domain seizure: the domain starts
// serving the notice page and the crawler's cached view of it is stale.
func (w *World) onSeize(domain string, c *intervention.CourtCase) {
	w.Web.Register(domain, &simweb.SeizureNoticeSite{
		Firm:    c.Firm.Name,
		CaseID:  c.ID,
		Domains: c.Domains,
		Gen:     w.Gen,
	})
	w.Crawler.Invalidate(domain)
	if w.Data != nil {
		w.Data.recordSeizure(domain, c)
	}
}

// onReact records the campaign's re-pointing of a store to a backup domain.
func (w *World) onReact(st *store.Store, newDomain string, day simclock.Day) {
	if w.Data != nil {
		w.Data.recordReaction(st, newDomain, day)
	}
}

// trainClassifier builds the labeled corpus from named campaigns, samples
// the seed set, trains, and records 10-fold CV accuracy.
func (w *World) trainClassifier() {
	var namedDeps []*campaign.Deployment
	for _, dep := range w.Deps {
		if !dep.Spec.IsTail() {
			namedDeps = append(namedDeps, dep)
		}
	}
	docs := classify.BuildCorpus(w.R, w.Gen, namedDeps, classify.DefaultCorpusOptions())
	// Sample the seed: keep class coverage by taking docs round-robin per
	// class up to the target.
	byClass := make(map[string][]classify.Doc)
	var classes []string
	for _, d := range docs {
		if len(byClass[d.Label]) == 0 {
			classes = append(classes, d.Label)
		}
		byClass[d.Label] = append(byClass[d.Label], d)
	}
	sort.Strings(classes)
	var seed []classify.Doc
	for round := 0; len(seed) < w.Cfg.SeedDocsTarget; round++ {
		added := false
		for _, c := range classes {
			if round < len(byClass[c]) && len(seed) < w.Cfg.SeedDocsTarget {
				seed = append(seed, byClass[c][round])
				added = true
			}
		}
		if !added {
			break
		}
	}
	w.SeedDocs = seed
	opts := classify.DefaultOptions()
	if w.tel != nil {
		opts.EpochCounter = w.tel.Counter("classify_epochs_total")
		opts.Pool = w.tel.Pool("train")
	}
	span := w.tel.Stage("train").Start(0, "")
	w.CVAccuracy = classify.CrossValidate(seed, 10, opts)
	w.Classifier = classify.Train(seed, opts)
	span.End()
}

// Attribute classifies the store behind a domain into a campaign name, or
// "" when confidence falls below the unknown threshold. Results are cached
// per domain. Attribute is safe for concurrent use: the fetch and the
// classifier are read-only, and a domain's verdict is deterministic for a
// given day, so racing first calls converge on the same cached value
// (first write wins).
func (w *World) Attribute(storeDomain string, day simclock.Day) string {
	w.attrMu.Lock()
	if name, ok := w.attribution[storeDomain]; ok {
		w.attrMu.Unlock()
		return name
	}
	w.attrMu.Unlock()
	resp := w.Web.Fetch(simweb.Request{
		URL:       "http://" + storeDomain + "/",
		UserAgent: simweb.BrowserUA,
		Referrer:  simweb.SearchReferrer,
		Day:       day,
	})
	name := ""
	if resp.Status == 200 {
		pred := w.Classifier.Predict(featuresOf(resp.Body))
		if pred.Prob >= w.Cfg.UnknownThreshold {
			name = pred.Label
		}
	}
	w.attrMu.Lock()
	defer w.attrMu.Unlock()
	if cached, ok := w.attribution[storeDomain]; ok {
		return cached
	}
	w.attribution[storeDomain] = name
	return name
}

// TruthCampaign returns the ground-truth campaign owning a store domain,
// for validation experiments.
func (w *World) TruthCampaign(storeDomain string) (*campaign.Spec, bool) {
	st, ok := w.storeByDom[storeDomain]
	if !ok {
		return nil, false
	}
	return st.Dep.Campaign, true
}

// StoreByDomain resolves any of a store's domains to its runtime.
func (w *World) StoreByDomain(domain string) (*store.Store, bool) {
	st, ok := w.storeByDom[domain]
	return st, ok
}

// StoreByID resolves a store id.
func (w *World) StoreByID(id string) (*store.Store, bool) {
	st, ok := w.storesByID[id]
	return st, ok
}

// CampaignStores lists a campaign's stores by its key.
func (w *World) CampaignStores(key string) []*store.Store {
	return w.campStores[key]
}

// DoorwayTarget returns the store a doorway forwards to.
func (w *World) DoorwayTarget(dwID string) (*store.Store, bool) {
	st, ok := w.doorTargets[dwID]
	return st, ok
}
