package core

import (
	"runtime"
	"testing"

	"repro/internal/simclock"
)

// smallConfig is the miniature study the parallel-pipeline tests run twice;
// trimmed below TestConfig so the double run stays fast.
func smallConfig() Config {
	cfg := TestConfig()
	cfg.TermsPerVertical = 3
	cfg.SlotsPerTerm = 20
	cfg.ExtendedTail = false
	return cfg
}

// TestParallelPipelineDeterministic is the tentpole's contract: the same
// configuration must produce a bit-identical Dataset whether the day
// pipeline runs on one observe worker at GOMAXPROCS=1 or fans out across
// every core. Fingerprint folds in every observation (PSR counts, series,
// attribution layers, first-seen maps, seizures, sampled orders), so any
// scheduling-dependent float-sum order, RNG draw order, or map-iteration
// leak shows up as a mismatch.
func TestParallelPipelineDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}

	serialCfg := smallConfig()
	serialCfg.ObserveWorkers = 1
	serialCfg.CrawlWorkers = 1
	prev := runtime.GOMAXPROCS(1)
	serial := NewWorld(serialCfg).Run()
	runtime.GOMAXPROCS(prev)

	parCfg := smallConfig()
	parCfg.ObserveWorkers = runtime.NumCPU()
	parCfg.CrawlWorkers = runtime.NumCPU()
	par := NewWorld(parCfg).Run()

	// Spot-check the headline numbers first so a mismatch names the field
	// instead of only reporting unequal hashes.
	if serial.TotalPSRs() != par.TotalPSRs() {
		t.Errorf("PSR totals differ: serial=%d parallel=%d", serial.TotalPSRs(), par.TotalPSRs())
	}
	if serial.TotalStores() != par.TotalStores() {
		t.Errorf("store totals differ: serial=%d parallel=%d", serial.TotalStores(), par.TotalStores())
	}
	if got, want := par.AttributedShare(), serial.AttributedShare(); got != want {
		t.Errorf("attributed share differs: serial=%v parallel=%v", want, got)
	}
	if len(serial.Seizures) != len(par.Seizures) {
		t.Errorf("seizure counts differ: serial=%d parallel=%d", len(serial.Seizures), len(par.Seizures))
	}
	for id, so := range serial.SampledOrders {
		po, ok := par.SampledOrders[id]
		if !ok {
			t.Errorf("sampled store %s missing from parallel run", id)
			continue
		}
		if so.TotalDelta != po.TotalDelta {
			t.Errorf("store %s order delta differs: serial=%d parallel=%d", id, so.TotalDelta, po.TotalDelta)
		}
		for i := range so.Volume {
			if so.Volume[i] != po.Volume[i] {
				t.Errorf("store %s volume[%d] differs: serial=%v parallel=%v", id, i, so.Volume[i], po.Volume[i])
				break
			}
		}
	}

	if sf, pf := serial.Fingerprint(), par.Fingerprint(); sf != pf {
		t.Fatalf("dataset fingerprints differ: serial=%#x parallel=%#x", sf, pf)
	}
}

// TestFingerprintMatchesRerun guards the fingerprint itself: two identical
// sequential runs must hash equal (and a different seed must not), so a
// fingerprint that ignored its inputs could not pass.
func TestFingerprintMatchesRerun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallConfig()
	a := NewWorld(cfg).Run().Fingerprint()
	b := NewWorld(cfg).Run().Fingerprint()
	if a != b {
		t.Fatalf("identical runs hash differently: %#x vs %#x", a, b)
	}
	cfg.Seed = cfg.Seed + 1
	if c := NewWorld(cfg).Run().Fingerprint(); c == a {
		t.Fatalf("different seed produced the same fingerprint %#x", c)
	}
}

// TestRunDayParallelUnderRace drives the concurrent observe phase with more
// workers than this machine may have cores so `go test -race` exercises the
// crawler in-flight dedup, the shared Attribute cache, and the engine's
// concurrent readers.
func TestRunDayParallelUnderRace(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallConfig()
	cfg.ObserveWorkers = 4
	cfg.CrawlWorkers = 4
	w := NewWorld(cfg)
	for d := simclock.Day(0); d < 30 && int(d) < w.Sim.Days(); d++ {
		w.RunDay(d)
	}
}
