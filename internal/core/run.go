package core

import (
	"fmt"
	"sort"

	"repro/internal/brands"
	"repro/internal/htmlparse"
	"repro/internal/purchase"
	"repro/internal/searchsim"
	"repro/internal/simclock"
	"repro/internal/store"
	"repro/internal/traffic"
)

// featuresOf extracts classifier features from a page.
func featuresOf(body string) []string { return htmlparse.Triplets(body) }

// Run executes the whole study: every simulation day the world advances,
// interventions fire, demand flows, and (inside the crawl window) the
// measurement pipeline observes it. It returns the completed dataset.
func (w *World) Run() *Dataset {
	for d := simclock.Day(0); int(d) < w.Sim.Days(); d++ {
		w.RunDay(d)
	}
	w.Finalize()
	return w.Data
}

// RunDay advances the world one day.
func (w *World) RunDay(d simclock.Day) {
	w.Engine.Advance(d)
	w.rotateStores(d)
	w.Seizure.Tick(d)

	inStudy := int(d) < w.Study.Days()
	for _, v := range brands.All() {
		w.observeVertical(v, d, inStudy)
	}
	w.Labeler.Tick(d, w.Engine, w.Specs, w.Deps)
	w.applyTraffic(d)
	if inStudy {
		w.Sampler.Visit(d, w.purchaseTargets())
		neu, tot := w.Engine.ChurnToday()
		w.Data.ChurnNew.Add(int(d), float64(neu))
		w.Data.ChurnTotal.Add(int(d), float64(tot))
	}
}

// rotateStores applies proactive domain rotation for campaigns that use it
// (§5.2.3): during the campaign's peak, stores move to a fresh domain every
// RotationDays.
func (w *World) rotateStores(d simclock.Day) {
	for _, st := range w.Stores {
		spec := st.Dep.Campaign
		if spec.RotationDays == 0 || d < spec.PeakFrom {
			continue
		}
		epochs := st.Epochs()
		last := epochs[len(epochs)-1].From
		if last < spec.PeakFrom {
			last = spec.PeakFrom
		}
		if int(d-last) >= spec.RotationDays && !st.Dark(d) {
			if newDom := st.MoveToNextDomain(d); newDom != "" {
				w.Data.recordReaction(st, newDom, d)
			}
		}
	}
}

// observeVertical runs the day's crawl over one vertical's SERPs and books
// the observations.
func (w *World) observeVertical(v brands.Vertical, d simclock.Day, inStudy bool) {
	vo := w.Data.Verticals[v]

	// Collect the day's unique doorway-candidate domains with sample URLs.
	urls := make(map[string]string)
	w.Engine.EachSlot(v, func(_, _ int, s *searchsim.Slot) {
		if _, dup := urls[s.Domain]; !dup {
			urls[s.Domain] = s.URL
		}
	})
	verdicts := w.Crawler.CheckDomains(urls, d)

	var top10Poisoned, top100Poisoned, penalized, top10Slots, slots int
	attributedToday := make(map[string]int)
	w.Engine.EachSlot(v, func(_, rank int, s *searchsim.Slot) {
		slots++
		if rank < 10 {
			top10Slots++
		}
		ver := verdicts[s.Domain]
		if !ver.Cloaked {
			return
		}
		top100Poisoned++
		if rank < 10 {
			top10Poisoned++
		}
		w.Labeler.Observe(s.Domain, d, s.Root)
		if _, seen := w.Data.DoorFirstSeen[s.Domain]; !seen {
			w.Data.DoorFirstSeen[s.Domain] = d
		}

		// Resolve and book the landing store.
		var attribution string
		if ver.IsStore && ver.StoreDomain != "" {
			if _, seen := w.Data.StoreFirstSeen[ver.StoreDomain]; !seen {
				w.Data.StoreFirstSeen[ver.StoreDomain] = d
			}
			if st, ok := w.storeByDom[ver.StoreDomain]; ok {
				w.Seizure.MarkVisible(st.ID(), d)
				if ws, watched := w.Data.WatchedPSRs[st.ID()]; watched {
					ws.Top100.Add(int(d), 1)
					if rank < 10 {
						ws.Top10.Add(int(d), 1)
					}
				}
			}
			attribution = w.Attribute(ver.StoreDomain, d)
		}
		name := Unknown
		if attribution != "" {
			name = attribution
		}
		attributedToday[name]++

		// Penalised = labeled in results, or pointing at a seized store.
		pen := s.Labeled
		if !pen {
			if st, ok := w.doorTargets[doorID(w, s.Domain)]; ok && st != nil {
				if _, gone := st.SeizedOn(st.CurrentDomain(d)); gone {
					pen = true
				}
			}
		}
		if pen {
			penalized++
		}

		if inStudy {
			vo.PSRObservations++
			vo.DoorwaysSeen[s.Domain] = true
			if s.Labeled {
				vo.LabeledObservations++
			}
			if _, hasLabel := w.Engine.LabeledOn(s.Domain); hasLabel {
				vo.LabelEligible++
			}
			if ver.IsStore && ver.StoreDomain != "" {
				vo.StoresSeen[ver.StoreDomain] = true
			}
			if name != Unknown {
				vo.CampaignsSeen[name] = true
				co := w.Data.campaignObs(name)
				co.PSRTop100.Add(int(d), 1)
				if rank < 10 {
					co.PSRTop10.Add(int(d), 1)
				}
				if s.Labeled {
					co.LabeledPSRs.Add(int(d), 1)
				}
				co.Doorways[s.Domain] = true
				if ver.StoreDomain != "" {
					co.StoresSeen[ver.StoreDomain] = true
				}
				co.Verticals[v] = true
			}
		}
	})

	if slots == 0 {
		return
	}
	day := int(d)
	vo.Top100PoisonedPct.Add(day, 100*float64(top100Poisoned)/float64(slots))
	if top10Slots > 0 {
		vo.Top10PoisonedPct.Add(day, 100*float64(top10Poisoned)/float64(top10Slots))
	}
	vo.PenalizedPct.Add(day, 100*float64(penalized)/float64(slots))
	for name, n := range attributedToday {
		vo.Attributed.Layer(name).Add(day, 100*float64(n)/float64(slots))
	}
}

// doorID maps a doorway domain back to its deployment id.
func doorID(w *World, domain string) string {
	if dw, ok := w.doorByDom[domain]; ok {
		return dw.ID
	}
	return ""
}

// applyTraffic routes the day's demand: query volume spread over terms,
// position-biased clicks on results, label deterrence, doorway forwarding
// to stores, conversion into orders.
func (w *World) applyTraffic(d simclock.Day) {
	tr := w.R.Sub(fmt.Sprintf("traffic/%d", d))
	type agg struct {
		visits float64
		refs   map[string]int
	}
	perStore := make(map[*store.Store]*agg)
	for _, v := range brands.All() {
		volume := v.DailyQueryVolume() * w.Cfg.Scale
		nTerms := w.Cfg.TermsPerVertical
		w.Engine.EachSlot(v, func(termIdx, rank int, s *searchsim.Slot) {
			if !s.Poisoned() {
				return
			}
			termVol := volume * traffic.TermWeight(termIdx, nTerms)
			clicks := w.Traffic.SlotClicks(termVol, rank, s.Labeled)
			if clicks <= 0 {
				return
			}
			st, ok := w.doorTargets[s.Doorway.ID]
			if !ok || st == nil {
				return
			}
			dom := st.CurrentDomain(d)
			if dom == "" {
				return
			}
			if _, gone := st.SeizedOn(dom); gone {
				// Users land on the seizure notice: traffic lost.
				return
			}
			a := perStore[st]
			if a == nil {
				a = &agg{refs: make(map[string]int)}
				perStore[st] = a
			}
			a.visits += clicks
			a.refs[s.Domain] += int(clicks * w.Traffic.ReferrerRate)
		})
	}
	for st, a := range perStore {
		visits := a.visits * (1 + w.Traffic.DirectVisitShare)
		var orders float64
		if !st.Dep.Campaign.OrdersHalted(d) && !st.PaymentHalted(d) {
			orders = w.Traffic.Orders(tr, visits)
		}
		st.RecordDay(d, visits, w.Traffic.Pages(visits), orders, a.refs)
	}
}

// purchaseTargets lazily builds the purchase-pair target list: up to
// SampleStoresPerCampaign stores per named campaign (scripted case-study
// stores first, since deployments list them first).
func (w *World) purchaseTargets() []purchase.Target {
	if w.targets != nil {
		return w.targets
	}
	for _, dep := range w.Deps {
		if dep.Spec.IsTail() {
			continue
		}
		key := dep.Spec.Key()
		n := w.Cfg.SampleStoresPerCampaign
		stores := w.campStores[key]
		if len(stores) < n {
			n = len(stores)
		}
		// The PHP?P= and BIGLOVE scripted stores must all be sampled for
		// Figures 5 and 6.
		if dep.Spec.Name == "PHP?P=" && len(stores) >= 4 {
			n = 4
		}
		for i := 0; i < n; i++ {
			st := stores[i]
			w.targets = append(w.targets, purchase.Target{
				StoreID:     st.ID(),
				CampaignKey: key,
				Domain: func(d simclock.Day) string {
					if st.Dark(d) {
						return ""
					}
					return st.CurrentDomain(d)
				},
			})
		}
	}
	sort.Slice(w.targets, func(i, j int) bool {
		return w.targets[i].StoreID < w.targets[j].StoreID
	})
	return w.targets
}

// Finalize copies end-of-run state into the dataset: label days and
// purchase-pair estimates.
func (w *World) Finalize() {
	for dom := range w.doorByDom {
		if ld, ok := w.Engine.LabeledOn(dom); ok {
			w.Data.DoorLabeledOn[dom] = ld
		}
	}
	for id, series := range w.Sampler.AllSeries() {
		w.Data.SampledOrders[id] = &OrderSeries{
			StoreID:    id,
			Rates:      series.Rates(w.Sim.Days()),
			Volume:     series.Volume(w.Sim.Days()),
			TotalDelta: series.TotalDelta(),
		}
	}
}
