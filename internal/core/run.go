package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/brands"
	"repro/internal/htmlparse"
	"repro/internal/parallel"
	"repro/internal/purchase"
	"repro/internal/searchsim"
	"repro/internal/simclock"
	"repro/internal/store"
	"repro/internal/traffic"
)

// featuresOf extracts classifier features from a page.
func featuresOf(body string) []string { return htmlparse.Triplets(body) }

// Run executes the whole study: every simulation day the world advances,
// interventions fire, demand flows, and (inside the crawl window) the
// measurement pipeline observes it. It returns the completed dataset.
func (w *World) Run() *Dataset {
	//sslint:ignore errflow context.Background never cancels and cancellation is RunContext's only error source
	d, _ := w.RunContext(context.Background())
	return d
}

// NextDay is the resume cursor: the first simulation day not yet run.
// Days [0, NextDay) are fully committed.
func (w *World) NextDay() int { return int(w.nextDay) }

// TargetDays is how many days RunContext will execute in total: the
// simulation window, shortened by Config.MaxDays when a cap is set.
func (w *World) TargetDays() int {
	days := w.Sim.Days()
	if w.Cfg.MaxDays > 0 && w.Cfg.MaxDays < days {
		return w.Cfg.MaxDays
	}
	return days
}

// RunContext is Run with cooperative cancellation. The context is checked
// at each day boundary — never mid-day, so the dataset is always coherent:
// every day in [0, DaysRun) is fully committed and no later day has begun.
// On cancellation it finalizes and returns the partial dataset alongside
// ctx's error; Dataset.DaysRun (and, under fault injection, the coverage
// mask) tell downstream consumers how much of the window was measured.
//
// The world keeps a resume cursor: a later RunContext call on the same
// world continues from the first unrun day, so a cancelled study can be
// resumed to completion.
func (w *World) RunContext(ctx context.Context) (*Dataset, error) {
	for int(w.nextDay) < w.TargetDays() {
		if err := ctx.Err(); err != nil {
			w.Finalize()
			w.Data.DaysRun = int(w.nextDay)
			return w.Data, err
		}
		d := w.nextDay
		if w.OnDayStart != nil {
			w.OnDayStart(d)
		}
		w.RunDay(d)
		// Advance the cursor before the day-boundary hook so a snapshot
		// taken inside it records day d as committed.
		w.nextDay = d + 1
		if w.OnDayEnd != nil {
			w.OnDayEnd(d)
		}
	}
	w.Finalize()
	w.Data.DaysRun = int(w.nextDay)
	return w.Data, nil
}

// RunDay advances the world one day.
//
// The day pipeline is split into a parallel observe phase and a sequential
// commit phase. Each vertical's observation (crawl, cloaking verdicts,
// attribution, per-vertical tallies) runs concurrently against a frozen
// world — nothing the observe phase reads is mutated until every vertical
// has finished. Side effects on state shared across verticals (the
// labeler, first-seen maps, the seizure engine's visibility clocks,
// per-campaign series) are recorded as per-vertical event lists and merged
// afterwards in fixed vertical order, so a study produces bit-identical
// output at any GOMAXPROCS or worker count.
func (w *World) RunDay(d simclock.Day) {
	daySpan := w.stDay.Start(int(d), "")
	defer daySpan.End()
	w.cDays.Inc()

	w.Engine.Advance(d)
	w.rotateStores(d)
	w.Seizure.Tick(d)

	inStudy := int(d) < w.Study.Days()
	if w.Faults.OutageDay(d) {
		// Whole-day crawler outage: the observe phase skips exactly like
		// the paper's real coverage gaps. The world does not pause for it —
		// users click, interventions fire, campaigns rotate — only the
		// measurement goes dark, and the dataset's coverage mask records
		// the gap so downstream numbers are loss-aware.
		w.Data.recordOutage(d)
		w.cOutages.Inc()
	} else {
		verticals := brands.All()
		obs := w.dayObs(len(verticals))
		obsSpan := w.stObserve.Start(int(d), "")
		parallel.ForEachObserved(w.Cfg.ObserveWorkers, len(verticals), func(i int) {
			w.observeVertical(obs[i], verticals[i], d, inStudy)
		}, w.obsPool)
		obsSpan.End()
		commitSpan := w.stCommit.Start(int(d), "")
		for _, o := range obs {
			w.commitObservation(o, d, inStudy)
		}
		commitSpan.End()
		if w.Faults != nil || w.tel != nil {
			var covered, lost int
			for _, o := range obs {
				covered += o.slots
				lost += o.lostSlots
			}
			w.cSlots.Add(int64(covered))
			w.cLostSlots.Add(int64(lost))
			if w.Faults != nil {
				w.Data.recordCoverage(d, covered, covered+lost)
			}
		}
	}

	w.Labeler.Tick(d, w.Engine, w.Specs, w.Deps)
	w.applyTraffic(d)
	if inStudy {
		w.Sampler.Visit(d, w.purchaseTargets())
		neu, tot := w.Engine.ChurnToday()
		fpSeriesAdd(&w.Data.fpIncr, pfxChurnNew, w.Data.ChurnNew, int(d), float64(neu))
		fpSeriesAdd(&w.Data.fpIncr, pfxChurnTotal, w.Data.ChurnTotal, int(d), float64(tot))
	}
}

// rotateStores applies proactive domain rotation for campaigns that use it
// (§5.2.3): during the campaign's peak, stores move to a fresh domain every
// RotationDays.
func (w *World) rotateStores(d simclock.Day) {
	for _, st := range w.Stores {
		spec := st.Dep.Campaign
		if spec.RotationDays == 0 || d < spec.PeakFrom {
			continue
		}
		epochs := st.Epochs()
		last := epochs[len(epochs)-1].From
		if last < spec.PeakFrom {
			last = spec.PeakFrom
		}
		if int(d-last) >= spec.RotationDays && !st.Dark(d) {
			if newDom := st.MoveToNextDomain(d); newDom != "" {
				w.Data.recordReaction(st, newDom, d)
			}
		}
	}
}

// labelerEvent is one Labeler.Observe call deferred to the commit phase.
// The labeler's root-dominance arming is sensitive to observation order, so
// events are replayed exactly as the sequential pipeline would have issued
// them: vertical by vertical, in slot order.
type labelerEvent struct {
	domain string
	root   bool
}

// campDayAgg accumulates one vertical's daily contribution to a named
// campaign's shared observation bucket.
type campDayAgg struct {
	top100, top10, labeled int
	doorways               map[string]bool
	stores                 map[string]bool
}

// watchedAgg accumulates daily PSR counts for one watched case-study store.
type watchedAgg struct {
	top100, top10 int
}

// dayObservation is one vertical's output of the read-only observe phase,
// plus the scratch buffers the phase reuses day over day. Everything here
// is owned by a single goroutine during observation; the commit phase
// merges the shared-state portions in fixed vertical order.
type dayObservation struct {
	vertical brands.Vertical
	vo       *VerticalObs

	// scratch: the day's unique doorway-candidate domains with sample URLs.
	urls map[string]string

	// per-vertical tallies (committed to vo directly by the observe phase —
	// each VerticalObs is touched by exactly one goroutine).
	slots, top10Slots             int
	top100Poisoned, top10Poisoned int
	penalized                     int
	attributed                    map[string]int

	// lostSlots counts slots the crawl could not observe this day: their
	// term's SERP was rate-limited away, or every fetch for the domain
	// failed (Unknown verdict). Lost slots are excluded from both the
	// numerators and denominators of the poisoning percentages — an
	// unobserved slot is missing data, not a clean result — and feed the
	// dataset's per-day coverage.
	lostSlots int
	// limitedTerms flags this vertical's rate-limited terms for the day
	// (nil when faults are off — the zero-cost path); limitedScratch is its
	// reusable backing array.
	limitedTerms   []bool
	limitedScratch []bool

	// deferred shared-state effects, replayed by the commit phase.
	labelerEvents []labelerEvent
	doorNew       map[string]bool // doorway domains not yet in DoorFirstSeen
	storeNew      map[string]bool // store domains not yet in StoreFirstSeen
	visible       map[string]bool // store IDs whose domain surfaced in PSRs
	watched       map[string]*watchedAgg
	campaigns     map[string]*campDayAgg

	// fpDelta is this vertical's day-fingerprint contribution: atoms for
	// every VerticalObs mutation the observe phase makes, summed privately
	// and folded into Dataset.fpIncr by the commit phase. Atom addition
	// commutes, so the fold is scheduling-independent by construction.
	fpDelta uint64
}

// dayObs returns the per-vertical observation records, allocated once and
// reused every day.
func (w *World) dayObs(n int) []*dayObservation {
	if w.obs == nil {
		w.obs = make([]*dayObservation, n)
		for i := range w.obs {
			w.obs[i] = &dayObservation{
				urls:       make(map[string]string, 256),
				attributed: make(map[string]int, 16),
				doorNew:    make(map[string]bool),
				storeNew:   make(map[string]bool),
				visible:    make(map[string]bool),
				watched:    make(map[string]*watchedAgg),
				campaigns:  make(map[string]*campDayAgg),
			}
		}
	}
	return w.obs
}

// reset clears a record for a new day, keeping allocated capacity.
func (o *dayObservation) reset() {
	clear(o.urls)
	o.slots, o.top10Slots = 0, 0
	o.top100Poisoned, o.top10Poisoned = 0, 0
	o.penalized = 0
	o.lostSlots = 0
	clear(o.attributed)
	o.labelerEvents = o.labelerEvents[:0]
	clear(o.doorNew)
	clear(o.storeNew)
	clear(o.visible)
	clear(o.watched)
	clear(o.campaigns)
	o.fpDelta = 0
}

// limited reports whether a term's SERP was rate-limited away this day.
func (o *dayObservation) limited(term int) bool {
	return o.limitedTerms != nil && term < len(o.limitedTerms) && o.limitedTerms[term]
}

// observeVertical runs the day's crawl over one vertical's SERPs and
// records the observations into o. It is the read-only half of the
// pipeline: it may run concurrently with other verticals' observations and
// must not mutate state shared across verticals. Domain resolution goes
// through the vertical's private snapshot (see snapshot.go) rather than the
// global cross-vertical maps; the crawler's verdict cache, the classifier's
// attribution cache, and the HTML generator's memo are the only shared
// structures it touches, and all are sharded/thread-safe with
// order-independent results for a fixed day.
func (w *World) observeVertical(o *dayObservation, v brands.Vertical, d simclock.Day, inStudy bool) {
	span := w.stObsVert.Start(int(d), v.String())
	defer span.End()
	o.reset()
	o.vertical = v
	o.vo = w.Data.Verticals[v]
	vo := o.vo
	snap := w.vertSnaps[v]

	// Pre-compute the day's rate-limited terms (faults only): losing a term
	// means its SERP never arrives, so its slots contribute no fetches and
	// no observations, only lost coverage.
	o.limitedTerms = nil
	if w.Faults.Config().RateLimitRate > 0 {
		n := w.Cfg.TermsPerVertical
		if cap(o.limitedScratch) < n {
			o.limitedScratch = make([]bool, n)
		}
		o.limitedTerms = o.limitedScratch[:n]
		for t := 0; t < n; t++ {
			o.limitedTerms[t] = w.Faults.SerpRateLimited(int(v), t, d)
		}
	}

	// Collect the day's unique doorway-candidate domains with sample URLs.
	w.Engine.EachSlot(v, func(term, _ int, s *searchsim.Slot) {
		if o.limited(term) {
			return
		}
		if _, dup := o.urls[s.Domain]; !dup {
			o.urls[s.Domain] = s.URL
		}
	})
	verdicts := w.Crawler.CheckDomains(o.urls, d)

	w.Engine.EachSlot(v, func(term, rank int, s *searchsim.Slot) {
		if o.limited(term) {
			o.lostSlots++
			return
		}
		ver := verdicts[s.Domain]
		if ver.Unknown && !ver.Cloaked {
			// Every fetch for this domain failed after retries (or its
			// breaker is open): the slot was not observed. It must not be
			// counted clean — the domain re-queues when it next surfaces.
			o.lostSlots++
			return
		}
		o.slots++
		if rank < 10 {
			o.top10Slots++
		}
		if !ver.Cloaked {
			return
		}
		o.top100Poisoned++
		if rank < 10 {
			o.top10Poisoned++
		}
		o.labelerEvents = append(o.labelerEvents, labelerEvent{s.Domain, s.Root})
		if _, seen := w.Data.DoorFirstSeen[s.Domain]; !seen {
			o.doorNew[s.Domain] = true
		}

		// Resolve and book the landing store.
		var attribution string
		if ver.IsStore && ver.StoreDomain != "" {
			if _, seen := w.Data.StoreFirstSeen[ver.StoreDomain]; !seen {
				o.storeNew[ver.StoreDomain] = true
			}
			if st, ok := snap.storeByDomain(ver.StoreDomain); ok {
				o.visible[st.ID()] = true
				if _, isWatched := snap.watched[st.ID()]; isWatched {
					wa := o.watched[st.ID()]
					if wa == nil {
						wa = &watchedAgg{}
						o.watched[st.ID()] = wa
					}
					wa.top100++
					if rank < 10 {
						wa.top10++
					}
				}
			}
			attribution = w.Attribute(ver.StoreDomain, d)
		}
		name := Unknown
		if attribution != "" {
			name = attribution
		}
		o.attributed[name]++

		// Penalised = labeled in results, or pointing at a seized store.
		pen := s.Labeled
		if !pen {
			if st := snap.doorTarget(s.Domain); st != nil {
				if _, gone := st.SeizedOn(st.CurrentDomain(d)); gone {
					pen = true
				}
			}
		}
		if pen {
			o.penalized++
		}

		if inStudy {
			vo.PSRObservations++
			o.fpDelta += snap.hPSR
			fpSetInsert(&o.fpDelta, snap.pfxDoorsSeen, vo.DoorwaysSeen, s.Domain)
			if s.Labeled {
				vo.LabeledObservations++
				o.fpDelta += snap.hLabeledObs
			}
			if _, hasLabel := w.Engine.LabeledOn(s.Domain); hasLabel {
				vo.LabelEligible++
				o.fpDelta += snap.hLabelEligible
			}
			if ver.IsStore && ver.StoreDomain != "" {
				fpSetInsert(&o.fpDelta, snap.pfxStoresSeen, vo.StoresSeen, ver.StoreDomain)
			}
			if name != Unknown {
				fpSetInsert(&o.fpDelta, snap.pfxCampsSeen, vo.CampaignsSeen, name)
				ca := o.campaigns[name]
				if ca == nil {
					ca = &campDayAgg{
						doorways: make(map[string]bool),
						stores:   make(map[string]bool),
					}
					o.campaigns[name] = ca
				}
				ca.top100++
				if rank < 10 {
					ca.top10++
				}
				if s.Labeled {
					ca.labeled++
				}
				ca.doorways[s.Domain] = true
				if ver.StoreDomain != "" {
					ca.stores[ver.StoreDomain] = true
				}
			}
		}
	})

	if o.slots == 0 {
		return
	}
	day := int(d)
	fpSeriesAdd(&o.fpDelta, snap.pfxTop100Pct, vo.Top100PoisonedPct, day,
		100*float64(o.top100Poisoned)/float64(o.slots))
	if o.top10Slots > 0 {
		fpSeriesAdd(&o.fpDelta, snap.pfxTop10Pct, vo.Top10PoisonedPct, day,
			100*float64(o.top10Poisoned)/float64(o.top10Slots))
	}
	fpSeriesAdd(&o.fpDelta, snap.pfxPenalizedPct, vo.PenalizedPct, day,
		100*float64(o.penalized)/float64(o.slots))
	// Sorted layer order keeps Stacked label insertion deterministic.
	for _, name := range sortedKeys(o.attributed) {
		fpSeriesAdd(&o.fpDelta, attrLayerPfx(v, name), vo.Attributed.Layer(name), day,
			100*float64(o.attributed[name])/float64(o.slots))
	}
}

// commitObservation merges one vertical's deferred shared-state effects
// into the labeler, the dataset, and the seizure engine. RunDay calls it
// for every vertical in fixed vertical order, which makes the merged state
// independent of how the observe phase was scheduled.
func (w *World) commitObservation(o *dayObservation, d simclock.Day, inStudy bool) {
	acc := &w.Data.fpIncr
	*acc += o.fpDelta
	o.fpDelta = 0
	for _, ev := range o.labelerEvents {
		w.Labeler.Observe(ev.domain, d, ev.root)
	}
	for dom := range o.doorNew {
		if _, seen := w.Data.DoorFirstSeen[dom]; !seen {
			fpDaySetPut(acc, pfxDoorSeen, w.Data.DoorFirstSeen, dom, d)
		}
	}
	for dom := range o.storeNew {
		if _, seen := w.Data.StoreFirstSeen[dom]; !seen {
			fpDaySetPut(acc, pfxStoreSeen, w.Data.StoreFirstSeen, dom, d)
		}
	}
	for id := range o.visible {
		w.Seizure.MarkVisible(id, d)
	}
	day := int(d)
	for id, wa := range o.watched {
		ws := w.Data.WatchedPSRs[id]
		fpSeriesAdd(acc, watchedPfx(id, "top100"), ws.Top100, day, float64(wa.top100))
		fpSeriesAdd(acc, watchedPfx(id, "top10"), ws.Top10, day, float64(wa.top10))
	}
	if !inStudy {
		return
	}
	for _, name := range sortedCampKeys(o.campaigns) {
		ca := o.campaigns[name]
		co := w.Data.campaignObs(name)
		fpSeriesAdd(acc, campPfx(name, "top100"), co.PSRTop100, day, float64(ca.top100))
		fpSeriesAdd(acc, campPfx(name, "top10"), co.PSRTop10, day, float64(ca.top10))
		fpSeriesAdd(acc, campPfx(name, "labeled"), co.LabeledPSRs, day, float64(ca.labeled))
		for dom := range ca.doorways {
			fpSetInsert(acc, campPfx(name, "doorways"), co.Doorways, dom)
		}
		for dom := range ca.stores {
			fpSetInsert(acc, campPfx(name, "stores"), co.StoresSeen, dom)
		}
		if !co.Verticals[o.vertical] {
			co.Verticals[o.vertical] = true
			*acc += fpU64(campPfx(name, "verticals"), uint64(o.vertical))
		}
	}
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedCampKeys(m map[string]*campDayAgg) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// storeAgg is one store's accumulated demand for a day.
type storeAgg struct {
	visits float64
	refs   map[string]int
}

// trafficShard is one vertical's demand aggregation, reused day over day.
// Shards are merged in fixed vertical order, so per-store float sums are
// accumulated in the same order at any worker count.
type trafficShard struct {
	perStore map[*store.Store]*storeAgg
}

// applyTraffic routes the day's demand: query volume spread over terms,
// position-biased clicks on results, label deterrence, doorway forwarding
// to stores, conversion into orders.
//
// The per-vertical slot walks are read-only and run in parallel, each
// filling its own shard. Shards merge in vertical order, and each store's
// order draw uses its own RNG substream keyed by (day, store ID) — so the
// result does not depend on scheduling or map iteration order.
func (w *World) applyTraffic(d simclock.Day) {
	span := w.stTraffic.Start(int(d), "")
	defer span.End()
	verticals := brands.All()
	if w.shards == nil {
		w.shards = make([]*trafficShard, len(verticals))
		for i := range w.shards {
			w.shards[i] = &trafficShard{perStore: make(map[*store.Store]*storeAgg)}
		}
	}
	parallel.ForEachObserved(w.Cfg.ObserveWorkers, len(verticals), func(i int) {
		w.shardTraffic(w.shards[i], verticals[i], d)
	}, w.trafPool)

	// Deterministic reduction: merge shards in vertical order, then visit
	// stores in ID order with per-store RNG substreams.
	merged := make(map[*store.Store]*storeAgg)
	for _, sh := range w.shards {
		for st, a := range sh.perStore {
			m := merged[st]
			if m == nil {
				m = &storeAgg{refs: make(map[string]int, len(a.refs))}
				merged[st] = m
			}
			m.visits += a.visits
			for dom, n := range a.refs {
				m.refs[dom] += n
			}
		}
	}
	stores := make([]*store.Store, 0, len(merged))
	for st := range merged {
		stores = append(stores, st)
	}
	sort.Slice(stores, func(i, j int) bool { return stores[i].ID() < stores[j].ID() })

	tr := w.R.Sub(fmt.Sprintf("traffic/%d", d))
	for _, st := range stores {
		a := merged[st]
		visits := a.visits * (1 + w.Traffic.DirectVisitShare)
		var orders float64
		if !st.Dep.Campaign.OrdersHalted(d) && !st.PaymentHalted(d) {
			orders = w.Traffic.Orders(tr.Sub(st.ID()), visits)
		}
		st.RecordDay(d, visits, w.Traffic.Pages(visits), orders, a.refs)
	}
}

// shardTraffic accumulates one vertical's demand into its shard. Read-only
// with respect to world state; doorway-to-store resolution goes through the
// vertical's snapshot, store access through mutex-guarded accessors.
func (w *World) shardTraffic(sh *trafficShard, v brands.Vertical, d simclock.Day) {
	clear(sh.perStore)
	snap := w.vertSnaps[v]
	volume := v.DailyQueryVolume() * w.Cfg.Scale
	nTerms := w.Cfg.TermsPerVertical
	w.Engine.EachSlot(v, func(termIdx, rank int, s *searchsim.Slot) {
		if !s.Poisoned() {
			return
		}
		termVol := volume * traffic.TermWeight(termIdx, nTerms)
		clicks := w.Traffic.SlotClicks(termVol, rank, s.Labeled)
		if clicks <= 0 {
			return
		}
		st := snap.doorTargetByID(s.Doorway.ID)
		if st == nil {
			return
		}
		dom := st.CurrentDomain(d)
		if dom == "" {
			return
		}
		if _, gone := st.SeizedOn(dom); gone {
			// Users land on the seizure notice: traffic lost.
			return
		}
		a := sh.perStore[st]
		if a == nil {
			a = &storeAgg{refs: make(map[string]int)}
			sh.perStore[st] = a
		}
		a.visits += clicks
		a.refs[s.Domain] += int(clicks * w.Traffic.ReferrerRate)
	})
}

// purchaseTargets returns the purchase-pair target list: up to
// SampleStoresPerCampaign stores per named campaign (scripted case-study
// stores first, since deployments list them first).
//
// Invariant: the list is built lazily on the first in-study day and is
// immutable afterwards — the sampler must probe a stable store set for the
// whole study. The sync.Once guards the build against a concurrent first
// call.
func (w *World) purchaseTargets() []purchase.Target {
	w.targetsOnce.Do(w.buildPurchaseTargets)
	return w.targets
}

func (w *World) buildPurchaseTargets() {
	for _, dep := range w.Deps {
		if dep.Spec.IsTail() {
			continue
		}
		key := dep.Spec.Key()
		n := w.Cfg.SampleStoresPerCampaign
		stores := w.campStores[key]
		if len(stores) < n {
			n = len(stores)
		}
		// The PHP?P= and BIGLOVE scripted stores must all be sampled for
		// Figures 5 and 6.
		if dep.Spec.Name == "PHP?P=" && len(stores) >= 4 {
			n = 4
		}
		for i := 0; i < n; i++ {
			st := stores[i] // bind per-target; the closure below outlives the loop
			w.targets = append(w.targets, purchase.Target{
				StoreID:     st.ID(),
				CampaignKey: key,
				Domain: func(d simclock.Day) string {
					if st.Dark(d) {
						return ""
					}
					return st.CurrentDomain(d)
				},
			})
		}
	}
	sort.Slice(w.targets, func(i, j int) bool {
		return w.targets[i].StoreID < w.targets[j].StoreID
	})
}

// Finalize copies end-of-run state into the dataset: label days and
// purchase-pair estimates. A cancelled-then-resumed study finalizes more
// than once, so both copies are replace-aware: the day fingerprint drops a
// superseded entry's atoms before folding the new ones.
func (w *World) Finalize() {
	acc := &w.Data.fpIncr
	for dom := range w.doorByDom {
		if ld, ok := w.Engine.LabeledOn(dom); ok {
			fpDaySetPut(acc, pfxDoorLabel, w.Data.DoorLabeledOn, dom, ld)
		}
	}
	for id, series := range w.Sampler.AllSeries() {
		os := &OrderSeries{
			StoreID:    id,
			Rates:      series.Rates(w.Sim.Days()),
			Volume:     series.Volume(w.Sim.Days()),
			TotalDelta: series.TotalDelta(),
		}
		if old, ok := w.Data.SampledOrders[id]; ok {
			*acc -= orderSeriesAtom(id, old)
		}
		w.Data.SampledOrders[id] = os
		*acc += orderSeriesAtom(id, os)
	}
}
