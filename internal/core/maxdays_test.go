package core

import (
	"context"
	"testing"

	"repro/internal/simclock"
)

func capCfg(maxDays int) Config {
	cfg := TestConfig()
	cfg.TermsPerVertical = 3
	cfg.SlotsPerTerm = 20
	cfg.ExtendedTail = false
	cfg.MaxDays = maxDays
	return cfg
}

// TestMaxDaysCapsRunAndCompletes: a capped study runs exactly MaxDays days,
// returns a finalized dataset with no error, and each day it does run is
// bit-identical to the same day of an uncapped study.
func TestMaxDaysCapsRunAndCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const cap = 5

	capped := NewWorld(capCfg(cap))
	data, err := capped.RunContext(context.Background())
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if data.DaysRun != cap {
		t.Fatalf("DaysRun = %d, want %d", data.DaysRun, cap)
	}
	if capped.NextDay() != cap {
		t.Fatalf("NextDay = %d, want %d", capped.NextDay(), cap)
	}

	// The uncapped control, cancelled at the same boundary, must agree on
	// the day fingerprint: the cap changes where the run stops, never what
	// any day computes.
	ctrl := NewWorld(capCfg(0))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctrl.OnDayEnd = func(d simclock.Day) {
		if int(d)+1 == cap {
			cancel()
		}
	}
	if _, err := ctrl.RunContext(ctx); err == nil {
		t.Fatal("control run was not cancelled")
	}
	if got, want := data.DayFingerprint(), ctrl.Data.DayFingerprint(); got != want {
		t.Fatalf("capped day fingerprint %#x != control %#x", got, want)
	}
}

// TestMaxDaysBeyondWindowIsFullRun: a cap past the window is a no-op.
func TestMaxDaysBeyondWindowIsFullRun(t *testing.T) {
	w := NewWorld(capCfg(0))
	days := w.Sim.Days()
	if got := w.TargetDays(); got != days {
		t.Fatalf("uncapped TargetDays = %d, want %d", got, days)
	}
	w2 := NewWorld(capCfg(days + 100))
	if got := w2.TargetDays(); got != days {
		t.Fatalf("oversized cap TargetDays = %d, want %d", got, days)
	}
}

// TestMaxDaysExcludedFromConfigHash: the cap is a driving knob; snapshots
// must stay portable across different caps.
func TestMaxDaysExcludedFromConfigHash(t *testing.T) {
	a, b := capCfg(0), capCfg(7)
	if a.ConfigHash() != b.ConfigHash() {
		t.Fatal("MaxDays changed ConfigHash; capped and uncapped studies cannot share checkpoints")
	}
}
