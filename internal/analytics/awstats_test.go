package analytics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/simclock"
)

func TestRenderParseRoundTrip(t *testing.T) {
	w := simclock.StudyWindow()
	visits := make([]float64, w.Days())
	pages := make([]float64, w.Days())
	visits[0], pages[0] = 120, 672
	visits[10], pages[10] = 80, 448
	refs := map[string]int{"door1.com": 90, "door2.net": 40}
	page := Render("cocovipbags.com", w, visits, pages, refs)
	rep, err := Parse(page)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Site != "cocovipbags.com" {
		t.Fatalf("site = %q", rep.Site)
	}
	if len(rep.Days) != 2 {
		t.Fatalf("days = %d, want 2 (zero days omitted)", len(rep.Days))
	}
	if rep.Days[0].Date != "2013-11-13" || rep.Days[0].Visits != 120 || rep.Days[0].Pages != 672 {
		t.Fatalf("day 0 = %+v", rep.Days[0])
	}
	if rep.TotalVisits() != 200 || rep.TotalPages() != 1120 {
		t.Fatalf("totals = %d/%d", rep.TotalVisits(), rep.TotalPages())
	}
	if len(rep.Referrers) != 2 || rep.Referrers[0].Domain != "door1.com" {
		t.Fatalf("referrers = %+v (must be sorted by visits desc)", rep.Referrers)
	}
}

func TestPagesPerVisit(t *testing.T) {
	rep := &Report{Days: []DayRow{{Visits: 100, Pages: 560}}}
	if got := rep.PagesPerVisit(); math.Abs(got-5.6) > 1e-9 {
		t.Fatalf("pages/visit = %v", got)
	}
	empty := &Report{}
	if empty.PagesPerVisit() != 0 {
		t.Fatal("empty report must have 0 pages/visit")
	}
}

func TestParseRejectsNonAWStats(t *testing.T) {
	if _, err := Parse("<html><head><title>shop</title></head><body></body></html>"); err == nil {
		t.Fatal("non-AWStats page must be rejected")
	}
}

func TestParseTolerantOfJunkRows(t *testing.T) {
	page := `<html><head><title>AWStats</title></head><body><h1>x.com</h1>
	<table><tr class="day"><td>2014-01-01</td><td>nope</td><td>5</td></tr>
	<tr class="day"><td>2014-01-02</td><td>3</td><td>17</td></tr>
	<tr class="ref"><td>d.com</td><td>bad</td></tr></table></body></html>`
	rep, err := Parse(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Days) != 1 || rep.Days[0].Visits != 3 {
		t.Fatalf("days = %+v", rep.Days)
	}
	if len(rep.Referrers) != 0 {
		t.Fatalf("referrers = %+v", rep.Referrers)
	}
}

func TestRenderOmitsDeadDays(t *testing.T) {
	w := simclock.StudyWindow()
	visits := make([]float64, w.Days())
	pages := make([]float64, w.Days())
	page := Render("quiet.com", w, visits, pages, nil)
	if strings.Contains(page, `class="day"`) {
		t.Fatal("report for dead site must have no day rows")
	}
}

func TestDefaultPath(t *testing.T) {
	if DefaultPath != "/awstats/awstats.pl" {
		t.Fatal("default AWStats path changed")
	}
}
