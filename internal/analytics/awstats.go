// Package analytics implements the AWStats-style web analytics surface of
// §4.4: stores run a log analyser whose report page some of them leave
// publicly readable at the default URL. The study fetched those pages
// periodically and extracted visitor counts, page views and referrers.
//
// This package renders a report page from a store's traffic series and
// parses such pages back into structured data, so the measurement pipeline
// exercises the same scrape-and-parse path the paper did.
package analytics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/htmlparse"
	"repro/internal/simclock"
)

// DefaultPath is the well-known AWStats CGI path the crawler probes,
// mirroring http://<site>/awstats/awstats.pl?config=<site>.
const DefaultPath = "/awstats/awstats.pl"

// Report is the structured content of one AWStats page.
type Report struct {
	Site      string
	Days      []DayRow
	Referrers []RefRow
}

// DayRow is one day of aggregate traffic.
type DayRow struct {
	Date   string // YYYY-MM-DD
	Visits int
	Pages  int
}

// RefRow is one referrer domain and its visit count.
type RefRow struct {
	Domain string
	Visits int
}

// TotalVisits sums the report's daily visits.
func (r *Report) TotalVisits() int {
	var n int
	for _, d := range r.Days {
		n += d.Visits
	}
	return n
}

// TotalPages sums the report's daily page views.
func (r *Report) TotalPages() int {
	var n int
	for _, d := range r.Days {
		n += d.Pages
	}
	return n
}

// PagesPerVisit returns the mean pages fetched per visit (0 if no visits).
func (r *Report) PagesPerVisit() float64 {
	v := r.TotalVisits()
	if v == 0 {
		return 0
	}
	return float64(r.TotalPages()) / float64(v)
}

// Render produces the AWStats report HTML for a site given its daily
// traffic series over the window. Only days with traffic are listed, as a
// real log analyser would.
func Render(site string, w simclock.Window, visits, pages []float64, referrers map[string]int) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "<title>Statistics for %s (AWStats 7.0)</title>\n", site)
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1 class=\"aws-site\">%s</h1>\n", site)
	b.WriteString("<table class=\"aws-days\">\n<tr><th>Day</th><th>Visits</th><th>Pages</th></tr>\n")
	for d := 0; d < len(visits) && d < w.Days(); d++ {
		v := int(visits[d] + 0.5)
		p := 0
		if d < len(pages) {
			p = int(pages[d] + 0.5)
		}
		if v == 0 && p == 0 {
			continue
		}
		fmt.Fprintf(&b, "<tr class=\"day\"><td>%s</td><td>%d</td><td>%d</td></tr>\n",
			w.Date(simclock.Day(d)).Format("2006-01-02"), v, p)
	}
	b.WriteString("</table>\n")
	b.WriteString("<table class=\"aws-referrers\">\n<tr><th>Referrer</th><th>Visits</th></tr>\n")
	doms := make([]string, 0, len(referrers))
	for dom := range referrers {
		doms = append(doms, dom)
	}
	sort.Slice(doms, func(i, j int) bool {
		if referrers[doms[i]] != referrers[doms[j]] {
			return referrers[doms[i]] > referrers[doms[j]]
		}
		return doms[i] < doms[j]
	})
	for _, dom := range doms {
		fmt.Fprintf(&b, "<tr class=\"ref\"><td>%s</td><td>%d</td></tr>\n", dom, referrers[dom])
	}
	b.WriteString("</table>\n</body>\n</html>\n")
	return b.String()
}

// Parse extracts a Report from an AWStats page. It returns an error if the
// page does not look like an AWStats report.
func Parse(page string) (*Report, error) {
	root := htmlparse.Parse(page)
	rep := &Report{}
	if h1 := root.Find("h1"); h1 != nil {
		rep.Site = strings.TrimSpace(h1.InnerText())
	}
	title := root.Find("title")
	if title == nil || !strings.Contains(title.InnerText(), "AWStats") {
		return nil, fmt.Errorf("analytics: not an AWStats page")
	}
	for _, tr := range root.FindAll("tr") {
		class, _ := tr.Attr("class")
		cells := tr.FindAll("td")
		switch class {
		case "day":
			if len(cells) != 3 {
				continue
			}
			v, err1 := strconv.Atoi(strings.TrimSpace(cells[1].InnerText()))
			p, err2 := strconv.Atoi(strings.TrimSpace(cells[2].InnerText()))
			if err1 != nil || err2 != nil {
				continue
			}
			rep.Days = append(rep.Days, DayRow{
				Date:   strings.TrimSpace(cells[0].InnerText()),
				Visits: v,
				Pages:  p,
			})
		case "ref":
			if len(cells) != 2 {
				continue
			}
			v, err := strconv.Atoi(strings.TrimSpace(cells[1].InnerText()))
			if err != nil {
				continue
			}
			rep.Referrers = append(rep.Referrers, RefRow{
				Domain: strings.TrimSpace(cells[0].InnerText()),
				Visits: v,
			})
		}
	}
	return rep, nil
}
