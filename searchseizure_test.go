package searchseizure

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	studyOnce sync.Once
	study     *Study
)

func sharedStudy(t *testing.T) *Study {
	t.Helper()
	studyOnce.Do(func() {
		study = NewStudy(TestConfig())
		study.Run()
	})
	return study
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 16 {
		t.Fatalf("experiments = %d", len(exps))
	}
	ids := ExperimentIDs()
	if len(ids) != len(exps) {
		t.Fatal("id count mismatch")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("ids not sorted")
		}
	}
	if len(Ablations()) != 5 {
		t.Fatalf("ablations = %d", len(Ablations()))
	}
}

func TestStudyRunIdempotent(t *testing.T) {
	s := sharedStudy(t)
	a := s.Run()
	b := s.Run()
	if a != b {
		t.Fatal("Run must be idempotent")
	}
}

func TestEveryExperimentRenders(t *testing.T) {
	s := sharedStudy(t)
	for _, e := range Experiments() {
		out, err := s.Experiment(e.ID)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if out.ID != e.ID || out.Title != e.Title {
			t.Fatalf("%s: table identifies as %q/%q", e.ID, out.ID, out.Title)
		}
		if len(out.String()) < 40 {
			t.Fatalf("%s output too small", e.ID)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	s := sharedStudy(t)
	if _, err := s.Experiment("bogus"); err == nil {
		t.Fatal("unknown experiment must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustExperiment must panic on unknown id")
		}
	}()
	s.MustExperiment("bogus")
}

func TestUnknownAblation(t *testing.T) {
	if _, err := RunAblation("bogus", TestConfig()); err == nil {
		t.Fatal("unknown ablation must error")
	}
}

func TestTable1MentionsVerticals(t *testing.T) {
	s := sharedStudy(t)
	out := s.MustExperiment("table1").String()
	for _, v := range []string{"Louis Vuitton", "Uggs", "Beats By Dre", "Total"} {
		if v == "Total" {
			continue // totals are the caller's job via Totals()
		}
		if !strings.Contains(out, v) {
			t.Fatalf("table1 lacks %q:\n%s", v, out)
		}
	}
}

func TestExportWritesArtifacts(t *testing.T) {
	s := sharedStudy(t)
	dir := t.TempDir()
	if err := s.Export(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"summary.json", "vertical_series.csv", "campaign_series.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBenchConfigBiggerThanTest(t *testing.T) {
	b, tc := BenchConfig(), TestConfig()
	if b.Scale <= tc.Scale || b.TermsPerVertical <= tc.TermsPerVertical {
		t.Fatal("bench config must exceed test config")
	}
	if d := DefaultConfig(); d.Scale != 1.0 || d.TermsPerVertical != 100 {
		t.Fatal("paper-scale defaults changed")
	}
}
