package searchseizure

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// tinyConfig trims TestConfig further so API-contract tests that run whole
// studies stay fast.
func tinyConfig() Config {
	cfg := TestConfig()
	cfg.TermsPerVertical = 3
	cfg.SlotsPerTerm = 20
	cfg.ExtendedTail = false
	return cfg
}

func TestNewRejectsUnknownFaultProfile(t *testing.T) {
	if _, err := New(tinyConfig(), WithFaults("bogus")); err == nil {
		t.Fatal("New must reject an unknown fault profile")
	}
}

func TestNewAcceptsNamedProfileAndOffAlias(t *testing.T) {
	for _, name := range []string{"", "off", "moderate"} {
		if _, err := New(tinyConfig(), WithFaults(name)); err != nil {
			t.Errorf("WithFaults(%q): %v", name, err)
		}
	}
}

// TestWithTelemetryObservesStudy: a study built through the options API
// must feed the registry — the day counter matches the simulated window and
// the classifier reported training epochs.
func TestWithTelemetryObservesStudy(t *testing.T) {
	reg := NewTelemetry()
	s, err := New(tinyConfig(), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	counters := reg.Snapshot().Counters
	if got := counters["core_days_total"]; got != int64(s.World.Sim.Days()) {
		t.Errorf("core_days_total = %d, want %d", got, s.World.Sim.Days())
	}
	if counters["classify_epochs_total"] == 0 {
		t.Error("classify_epochs_total never incremented")
	}
}

// TestStudyRunContextCancellation: cancelling before the run starts must
// yield the context error plus a coherent zero-day dataset, leave the study
// uncached, and let a second call with a live context run to completion.
func TestStudyRunContextCancellation(t *testing.T) {
	s, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	data, rerr := s.RunContext(ctx)
	if !errors.Is(rerr, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", rerr)
	}
	if data == nil || data.DaysRun != 0 {
		t.Fatalf("cancelled-before-start dataset = %+v", data)
	}

	full, rerr := s.RunContext(context.Background())
	if rerr != nil {
		t.Fatalf("resumed RunContext: %v", rerr)
	}
	if full.DaysRun != s.World.Sim.Days() {
		t.Fatalf("resumed DaysRun = %d, want %d", full.DaysRun, s.World.Sim.Days())
	}
	// Completed runs are cached: Run must hand back the same dataset.
	if s.Run() != full {
		t.Fatal("completed dataset was not cached")
	}
}

// TestExperimentReturnsTable: the redesigned Experiment returns a typed
// Table whose String and JSON forms both carry the rendered text.
func TestExperimentReturnsTable(t *testing.T) {
	s, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := s.Experiment("table1")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "table1" || tbl.Title == "" {
		t.Fatalf("table metadata = %q / %q", tbl.ID, tbl.Title)
	}
	js, err := tbl.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), `"id": "table1"`) && !strings.Contains(string(js), `"id":"table1"`) {
		t.Fatalf("table JSON missing id: %s", js)
	}
	if !strings.Contains(string(js), "Vertical") {
		t.Fatalf("table JSON missing rendered text: %s", js)
	}
}

// TestDeprecatedShimsStillWork pins the compatibility contract: NewStudy
// and Run keep working for existing callers.
func TestDeprecatedShimsStillWork(t *testing.T) {
	s := NewStudy(tinyConfig())
	if d := s.Run(); d == nil || d.TotalPSRs() == 0 {
		t.Fatal("NewStudy().Run() no longer produces data")
	}
}
