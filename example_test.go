package searchseizure_test

import (
	"fmt"

	searchseizure "repro"
)

// Example shows the minimal end-to-end flow: build a miniature world, run
// the eight-month study, and render one of the paper's tables. Output is
// omitted because it depends on the configured world size.
func Example() {
	cfg := searchseizure.TestConfig()
	study := searchseizure.NewStudy(cfg)
	data := study.Run()

	fmt.Printf("PSR observations: %d\n", data.TotalPSRs())
	fmt.Println(study.MustExperiment("table1"))
	fmt.Println(study.MustExperiment("seizurelife"))
}

// Example_experiments enumerates the reproducible tables and figures.
func Example_experiments() {
	for _, e := range searchseizure.Experiments() {
		fmt.Printf("%s: %s\n", e.ID, e.Title)
	}
	for _, a := range searchseizure.Ablations() {
		fmt.Printf("%s: %s\n", a.ID, a.Title)
	}
}
