package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/studysvc"
	"repro/internal/telemetry"
)

// TestLoadtestSmoke drives the real fleet-launch + request loop against an
// in-process service at miniature scale: every launched study answers, the
// faulted web route's 5xx are all injected, and the report classifies
// correctly.
func TestLoadtestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m, err := studysvc.NewManager(studysvc.Options{
		BaseDir: t.TempDir(), Budget: 2, MaxActive: 1, Telemetry: telemetry.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		m.Shutdown(ctx)
	}()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	client := &http.Client{Timeout: 30 * time.Second}
	targets, err := launchFleet(client, srv.URL, 2, "moderate", 3, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 2 {
		t.Fatalf("launched %d targets, want 2", len(targets))
	}

	reg := telemetry.New()
	stop := time.Now().Add(2 * time.Second)
	done := make(chan struct{})
	const workers = 8
	for w := 0; w < workers; w++ {
		go func(w int) {
			drive(client, reg, srv.URL, targets, w, stop)
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}

	rep := buildReport(reg, 2*time.Second, len(targets))
	if rep.Requests == 0 {
		t.Fatal("no requests driven")
	}
	if rep.NonInjected5xx != 0 {
		t.Fatalf("%d non-injected 5xx", rep.NonInjected5xx)
	}
	if rep.APITransport != 0 {
		t.Fatalf("%d API transport errors", rep.APITransport)
	}
	if rep.MaxInflight == 0 || rep.MaxInflight > workers {
		t.Fatalf("max in-flight %d with %d workers", rep.MaxInflight, workers)
	}
	if _, ok := rep.LatencyUS["status"]; !ok {
		t.Fatalf("no status latency histogram in %v", rep.LatencyUS)
	}
	if rep.LatencyUS["status"].P99 <= 0 {
		t.Fatal("status p99 is zero")
	}
}
