// Command loadtest drives a running crawlerd study service (-data-dir
// mode) hard: it launches a fleet of tenant studies over POST /v1/studies,
// then sustains thousands of concurrent in-flight requests against the
// status, listing, experiment-registry and simulated-web routes for a
// fixed duration, measuring everything client-side with the repo's own
// telemetry histograms — no new metrics machinery.
//
// Failure discrimination is strict: the /v1 API surface sits outside the
// fault-injection layer, so ANY 5xx or transport error there fails the
// run. Only the per-study web route is faulted, and its injected 502s
// carry the "(injected)" body marker; those (and web-route connection
// drops/truncations, which only injection produces on loopback) are
// counted separately and do not fail the run.
//
// Usage:
//
//	loadtest -base http://127.0.0.1:8080 [-studies 8] [-faults moderate]
//	         [-inflight 1200] [-duration 30s] [-min-inflight 1000]
//	         [-p99-max 250ms] [-out loadtest.json]
//
// The JSON report carries request totals, req/s, the max observed
// in-flight gauge, per-route p50/p99 latencies and the full histogram
// snapshot. Exit status is non-zero when the run violates its bounds:
// a non-injected 5xx, an API transport error, max in-flight below
// -min-inflight, or a status-route p99 above -p99-max.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	searchseizure "repro"
	"repro/internal/studysvc"
	"repro/internal/telemetry"
)

// target is one launched tenant study the drivers hit.
type target struct {
	id     string
	domain string // one of its simulated domains, for the web route
}

// report is the machine-readable result document.
type report struct {
	DurationS      float64            `json:"duration_s"`
	Requests       int64              `json:"requests"`
	ReqPerSec      float64            `json:"req_per_sec"`
	MaxInflight    int64              `json:"max_inflight"`
	NonInjected5xx int64              `json:"non_injected_5xx"`
	APITransport   int64              `json:"api_transport_errors"`
	Injected       int64              `json:"injected_faults"`
	LatencyUS      map[string]latency `json:"latency_us"`
	Telemetry      telemetry.Snapshot `json:"telemetry"`
	Studies        int                `json:"studies"`
	Passed         bool               `json:"passed"`
	Failures       []string           `json:"failures,omitempty"`
}

type latency struct {
	P50 float64 `json:"p50"`
	P99 float64 `json:"p99"`
}

func main() {
	var (
		base        = flag.String("base", "", "base URL of a crawlerd -data-dir service (required)")
		studies     = flag.Int("studies", 8, "tenant studies to launch")
		faultsProf  = flag.String("faults", "moderate", "fault profile for the launched studies' webs")
		terms       = flag.Int("terms", 3, "terms per vertical for launched studies")
		slots       = flag.Int("slots", 20, "slots per term for launched studies")
		ckptEvery   = flag.Int("checkpoint-every", 25, "checkpoint cadence for launched studies")
		inflight    = flag.Int("inflight", 1200, "concurrent request drivers")
		duration    = flag.Duration("duration", 30*time.Second, "drive duration")
		minInflight = flag.Int64("min-inflight", 1000, "fail unless max observed in-flight reaches this")
		p99Max      = flag.Duration("p99-max", 0, "fail if the status route p99 exceeds this (0 = no bound)")
		out         = flag.String("out", "", "write the JSON report here as well as stdout")
	)
	flag.Parse()
	if *base == "" {
		fmt.Fprintln(os.Stderr, "loadtest: -base is required (point it at crawlerd -data-dir)")
		os.Exit(2)
	}

	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *inflight * 2,
			MaxIdleConnsPerHost: *inflight * 2,
			DisableCompression:  true,
		},
	}

	targets, err := launchFleet(client, *base, *studies, *faultsProf, *terms, *slots, *ckptEvery)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(1)
	}
	fmt.Printf("launched %d studies; driving %d workers for %v\n", len(targets), *inflight, *duration)

	reg := telemetry.New()
	stop := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *inflight; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			drive(client, reg, *base, targets, worker, stop)
		}(w)
	}
	wg.Wait()

	rep := buildReport(reg, *duration, len(targets))
	rep.Passed = true
	if rep.NonInjected5xx > 0 {
		rep.Failures = append(rep.Failures, fmt.Sprintf("%d non-injected 5xx", rep.NonInjected5xx))
	}
	if rep.APITransport > 0 {
		rep.Failures = append(rep.Failures, fmt.Sprintf("%d API transport errors", rep.APITransport))
	}
	if rep.MaxInflight < *minInflight {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("max in-flight %d < required %d", rep.MaxInflight, *minInflight))
	}
	if *p99Max > 0 {
		if p99 := rep.LatencyUS["status"].P99; p99 > float64(p99Max.Microseconds()) {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("status p99 %.0fus > bound %v", p99, *p99Max))
		}
	}
	rep.Passed = len(rep.Failures) == 0

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
	if *out != "" {
		raw, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadtest:", err)
			os.Exit(1)
		}
	}
	if !rep.Passed {
		fmt.Fprintln(os.Stderr, "loadtest: FAILED:", strings.Join(rep.Failures, "; "))
		os.Exit(1)
	}
	fmt.Printf("PASSED: %d requests, %.0f req/s, max in-flight %d, %d injected faults absorbed\n",
		rep.Requests, rep.ReqPerSec, rep.MaxInflight, rep.Injected)
}

// launchFleet posts the tenant studies and resolves one web domain each.
func launchFleet(client *http.Client, base string, n int, profile string, terms, slots, every int) ([]target, error) {
	noTail := false
	var targets []target
	for i := 0; i < n; i++ {
		spec := searchseizure.StudySpec{
			Seed:             int64(i + 1),
			Faults:           profile,
			TermsPerVertical: terms,
			SlotsPerTerm:     slots,
			ExtendedTail:     &noTail,
			CheckpointEvery:  every,
		}
		raw, _ := json.Marshal(spec)
		resp, err := client.Post(base+"/v1/studies", "application/json", bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("launch study %d: %w", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return nil, fmt.Errorf("launch study %d: %d: %s", i, resp.StatusCode, body)
		}
		var st studysvc.Status
		if err := json.Unmarshal(body, &st); err != nil {
			return nil, fmt.Errorf("launch study %d: %w", i, err)
		}
		dom, err := firstDomain(client, base, st.ID)
		if err != nil {
			return nil, err
		}
		targets = append(targets, target{id: st.ID, domain: dom})
	}
	return targets, nil
}

func firstDomain(client *http.Client, base, id string) (string, error) {
	resp, err := client.Get(base + "/v1/studies/" + id + "/domains?limit=1")
	if err != nil {
		return "", fmt.Errorf("domains for %s: %w", id, err)
	}
	defer resp.Body.Close()
	var doms struct {
		Domains []string `json:"domains"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doms); err != nil {
		return "", fmt.Errorf("domains for %s: %w", id, err)
	}
	if len(doms.Domains) == 0 {
		return "", fmt.Errorf("study %s has no domains", id)
	}
	return doms.Domains[0], nil
}

// drive is one worker's request loop: a fixed rotation over the API
// routes plus the faulted web route, so every histogram fills evenly.
func drive(client *http.Client, reg *telemetry.Registry, base string, targets []target, worker int, stop time.Time) {
	gauge := reg.Gauge("inflight")
	for i := 0; time.Now().Before(stop); i++ {
		t := targets[(worker+i)%len(targets)]
		var class, url string
		faulted := false
		switch i % 4 {
		case 0, 1:
			class, url = "status", base+"/v1/studies/"+t.id
		case 2:
			class, url = "serp", fmt.Sprintf("%s/v1/studies/%s/web/?simhost=%s&u=/", base, t.id, t.domain)
			faulted = true
		case 3:
			if worker%2 == 0 {
				class, url = "list", base+"/v1/studies"
			} else {
				class, url = "experiments", base+"/v1/studies/"+t.id+"/experiments"
			}
		}
		start := time.Now()
		gauge.Add(1)
		status, body, err := fetch(client, url)
		gauge.Add(-1)
		reg.Histogram("client_req_"+class+"_us", studysvc.LatencyBuckets()).
			Observe(float64(time.Since(start).Microseconds()))
		reg.Counter("req_total").Inc()

		switch {
		case err != nil && faulted:
			// Loopback transport errors on the faulted route are the
			// injection layer severing connections / truncating bodies.
			reg.Counter("err_injected").Inc()
		case err != nil:
			reg.Counter("err_api_transport").Inc()
		case status >= 500 && strings.Contains(body, "injected"):
			reg.Counter("err_injected").Inc()
		case status >= 500:
			reg.Counter("err_non_injected_5xx").Inc()
		}
	}
}

// fetch reads the whole body (so truncation surfaces as an error) and
// returns status, a body prefix for classification, and any transport
// error.
func fetch(client *http.Client, url string) (int, string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		return resp.StatusCode, string(body), err
	}
	// Drain the rest so the connection is reusable.
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, string(body), nil
}

func buildReport(reg *telemetry.Registry, d time.Duration, studies int) report {
	snap := reg.Snapshot()
	rep := report{
		DurationS:      d.Seconds(),
		Requests:       snap.Counters["req_total"],
		MaxInflight:    snap.Gauges["inflight"].Max,
		NonInjected5xx: snap.Counters["err_non_injected_5xx"],
		APITransport:   snap.Counters["err_api_transport"],
		Injected:       snap.Counters["err_injected"],
		LatencyUS:      map[string]latency{},
		Telemetry:      snap,
		Studies:        studies,
	}
	if d > 0 {
		rep.ReqPerSec = float64(rep.Requests) / d.Seconds()
	}
	for name, h := range snap.Histograms {
		if cls, ok := strings.CutPrefix(name, "client_req_"); ok {
			cls = strings.TrimSuffix(cls, "_us")
			rep.LatencyUS[cls] = latency{P50: h.Quantile(0.50), P99: h.Quantile(0.99)}
		}
	}
	return rep
}
