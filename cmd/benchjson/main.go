// Command benchjson runs the day-pipeline benchmark suite through
// testing.Benchmark and writes the results as machine-readable JSON
// (BENCH_0.json by default), so CI can archive per-commit numbers and
// diff them across runs.
//
// Beyond the raw timings the report carries the observability layer's two
// contract numbers: telemetry_overhead_pct compares the day pipeline with a
// live telemetry registry against the no-op sink (CI asserts it stays under
// 2%), and the telemetry block is a full metrics snapshot from a
// faults-moderate study so counter regressions (retry storms, cache-hit
// collapses) show up in the archived JSON diffs.
//
// The report's "metrics" block is the ratchet surface: -baseline compares
// it against a checked-in bench.baseline.json and exits non-zero when any
// ratcheted metric regresses past its slack (throughput down, allocs up,
// sslint wall time up). Telemetry overhead rides along in the baseline for
// context but is gated by its own < 2% contract, not the ratchet.
//
// Usage:
//
//	benchjson [-o BENCH_0.json] [-samples 3] [-baseline bench.baseline.json]
//	benchjson -write-baseline [-baseline bench.baseline.json]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	searchseizure "repro"
	"repro/internal/campaign"
	"repro/internal/checkpoint"
	"repro/internal/htmlgen"
	"repro/internal/htmlparse"
	"repro/internal/lint"
	"repro/internal/lint/load"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/studysvc"
	"repro/internal/telemetry"
)

// result is one benchmark's measurements in flat JSON-friendly form.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// metrics is the ratchet surface: the handful of numbers the baseline
// tracks across commits. Throughput, allocation counts and sslint wall
// time are ratcheted (a regression past the per-metric slack fails);
// telemetry overhead is recorded for the archived diff but gated by its
// own contract.
type metrics struct {
	// SimulatedDaysPerSec is the parallel day pipeline's throughput:
	// 1e9 / SimulatedDayParallel ns/op. Ratcheted (lower is worse).
	SimulatedDaysPerSec float64 `json:"simulated_days_per_sec"`
	// DayAllocsPerOp is SimulatedDayParallel's allocs/op. Ratcheted.
	DayAllocsPerOp int64 `json:"day_allocs_per_op"`
	// HtmlgenDoorwayAllocsPerOp is the steady-state (memoised) doorway
	// page fetch. Ratcheted; the htmlgen alloc test pins it to zero.
	HtmlgenDoorwayAllocsPerOp int64 `json:"htmlgen_doorway_allocs_per_op"`
	// HtmlgenStoreAllocsPerOp is the steady-state storefront fetch. Ratcheted.
	HtmlgenStoreAllocsPerOp int64 `json:"htmlgen_store_allocs_per_op"`
	// TripletsAllocsPerOp is the parser's allocs per document. Ratcheted.
	TripletsAllocsPerOp int64 `json:"triplets_allocs_per_op"`
	// TelemetryOverheadPct is recorded, not ratcheted: its own < 2%
	// contract is asserted directly in CI.
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`
	// SslintWallMs is one full lint pass over ./... — the latency every CI
	// run and every pre-commit pays. Ratcheted with wide slack: single-run
	// wall clock on shared hardware is noisy, so the gate only trips when
	// the suite genuinely blows up, not when the host is grumpy.
	SslintWallMs float64 `json:"sslint_wall_ms"`
	// CheckpointSaveMs times one full-study snapshot through the codec and
	// the atomic write protocol; CheckpointLoadMs times the recovery scan
	// plus decode of the same file. Recorded, not ratcheted: both are
	// dominated by disk latency, which is the host's mood rather than the
	// code's cost.
	CheckpointSaveMs float64 `json:"checkpoint_save_ms"`
	CheckpointLoadMs float64 `json:"checkpoint_load_ms"`
	// APILaunchMs times one POST /v1/studies round trip through the
	// service plane (spec validation, world build, spec persistence).
	// Recorded, not ratcheted: dominated by the world build.
	APILaunchMs float64 `json:"api_launch_ms"`
	// SerpReqP99Us is the p99 of the API's simulated-web route under a
	// serial drive, read from the service registry's own histogram.
	// Recorded, not ratcheted.
	SerpReqP99Us float64 `json:"serp_req_p99_us"`
}

// report is the file's top-level shape.
type report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GoMaxProcs is what the benchmarks actually ran under — the number a
	// reader needs before comparing throughput across hosts.
	GoMaxProcs int `json:"gomaxprocs"`
	// Samples is the min-of-N width used for every ratcheted benchmark.
	Samples int      `json:"samples"`
	Results []result `json:"results"`
	Metrics metrics  `json:"metrics"`
	// TelemetryOverheadPct is SimulatedDayTelemetry vs SimulatedDayParallel:
	// the day-pipeline cost of running with a live registry relative to the
	// no-op sink. The contract (asserted in CI) is < 2%.
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`
	// Telemetry is the metrics snapshot of a small faults-moderate study,
	// so the archived JSON captures workload shape (fetch chains, retries,
	// breaker trips, injected faults), not just wall time.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
	// SslintWallMs is one full sslint pass over ./... — load, type-check,
	// fact propagation, all analyzers — so analyzer performance regressions
	// land in the same per-commit diff as the pipeline numbers.
	SslintWallMs float64 `json:"sslint_wall_ms"`
	// SslintFindings counts the pass's raw (pre-baseline) findings; CI
	// gates on cmd/sslint separately, this is just cross-checkable context
	// for the timing.
	SslintFindings int `json:"sslint_findings"`
}

// baselineFile is what -write-baseline persists and -baseline compares
// against: the ratchet surface plus enough host metadata to spot
// apples-to-oranges comparisons in review.
type baselineFile struct {
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Samples    int     `json:"samples"`
	Metrics    metrics `json:"metrics"`
}

// benchCfg mirrors the root package's ablationConfig: small enough that a
// full study fits in a CI step.
func benchCfg() searchseizure.Config {
	cfg := searchseizure.TestConfig()
	cfg.TermsPerVertical = 4
	cfg.SlotsPerTerm = 20
	cfg.ExtendedTail = false
	return cfg
}

func run(name string, fn func(b *testing.B)) result {
	r := testing.Benchmark(fn)
	fmt.Fprintf(os.Stderr, "%-28s %12d ns/op %8d allocs/op\n", name, r.NsPerOp(), r.AllocsPerOp())
	return result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// runMin takes the best of `samples` runs. The overhead contract compares
// two ~10ms pipelines whose single-sample noise on shared CI hardware is
// several percent — larger than the quantity under test — and min-of-N is
// the usual estimator for "the code's cost without the machine's mood".
// It reports which sample won so a log reader can see whether the minimum
// came from a warm late run or the machine simply never settled.
func runMin(name string, samples int, fn func(b *testing.B)) result {
	best := run(name, fn)
	won := 1
	for i := 1; i < samples; i++ {
		if r := run(name, fn); r.NsPerOp < best.NsPerOp {
			best = r
			won = i + 1
		}
	}
	fmt.Fprintf(os.Stderr, "%-28s min-of-%d: sample %d/%d won (%.0f ns/op)\n",
		name, samples, won, samples, best.NsPerOp)
	return best
}

// sslintModuleRoot walks up from the working directory to go.mod, so the
// timing works whether CI runs benchjson from the root or a subdirectory.
func sslintModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// ratchet is one compared metric: how to read it out of a metrics block,
// which direction is a regression, and how much slack it gets before the
// gate trips. Min-of-N benchmark numbers get the standard 10%; single-run
// wall-clock numbers get 50%, enough to absorb a grumpy host while still
// catching a suite that doubles its cost.
type ratchet struct {
	name        string
	read        func(m metrics) float64
	higherIsBad bool
	slack       float64
}

var ratchets = []ratchet{
	{"simulated_days_per_sec", func(m metrics) float64 { return m.SimulatedDaysPerSec }, false, 0.10},
	{"day_allocs_per_op", func(m metrics) float64 { return float64(m.DayAllocsPerOp) }, true, 0.10},
	{"htmlgen_doorway_allocs_per_op", func(m metrics) float64 { return float64(m.HtmlgenDoorwayAllocsPerOp) }, true, 0.10},
	{"htmlgen_store_allocs_per_op", func(m metrics) float64 { return float64(m.HtmlgenStoreAllocsPerOp) }, true, 0.10},
	{"triplets_allocs_per_op", func(m metrics) float64 { return float64(m.TripletsAllocsPerOp) }, true, 0.10},
	{"sslint_wall_ms", func(m metrics) float64 { return m.SslintWallMs }, true, 0.50},
}

// compareBaseline enforces the per-metric ratchet and returns the number
// of regressions. A zero baseline on a higher-is-bad metric means "stay at
// zero": any increase is a regression, since the alloc counts involved are
// deterministic, not noisy.
func compareBaseline(base baselineFile, cur metrics) int {
	regressions := 0
	for _, r := range ratchets {
		b, c := r.read(base.Metrics), r.read(cur)
		var bad bool
		switch {
		case r.higherIsBad && b == 0:
			bad = c > 0
		case r.higherIsBad:
			bad = c > b*(1+r.slack)
		default:
			bad = c < b*(1-r.slack)
		}
		verdict := "ok"
		if bad {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(os.Stderr, "ratchet %-32s baseline %12.2f current %12.2f  %s\n",
			r.name, b, c, verdict)
	}
	return regressions
}

func main() {
	out := flag.String("o", "BENCH_0.json", "output file")
	samples := flag.Int("samples", 3, "min-of-N sample count for ratcheted benchmarks")
	baselinePath := flag.String("baseline", "", "baseline file to ratchet against (exit 1 on any regression past a metric's slack)")
	writeBaseline := flag.String("write-baseline", "", "write the measured metrics as a new baseline file and exit 0")
	flag.Parse()

	rep := report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Samples:    *samples,
	}

	rep.Results = append(rep.Results, run("FullStudy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := searchseizure.NewStudy(benchCfg()).Run()
			if d.TotalPSRs() == 0 {
				b.Fatal("study produced no PSRs")
			}
		}
	}))

	rep.Results = append(rep.Results, run("SimulatedDaySerial", func(b *testing.B) {
		cfg := benchCfg()
		cfg.ObserveWorkers = 1
		s := searchseizure.NewStudy(cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.World.RunDay(simclock.Day(0))
		}
	}))

	// Every ratcheted benchmark is measured min-of-N so the baseline diff
	// is code cost, not scheduler noise.
	parallelRes := runMin("SimulatedDayParallel", *samples, func(b *testing.B) {
		cfg := benchCfg()
		cfg.ObserveWorkers = runtime.NumCPU()
		cfg.CrawlWorkers = runtime.NumCPU()
		s := searchseizure.NewStudy(cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.World.RunDay(simclock.Day(0))
		}
	})
	parallelNs := parallelRes.NsPerOp
	rep.Results = append(rep.Results, parallelRes)

	// Same pipeline with a live registry attached: the delta against
	// SimulatedDayParallel is the telemetry layer's whole cost.
	telemetryRes := runMin("SimulatedDayTelemetry", *samples, func(b *testing.B) {
		cfg := benchCfg()
		cfg.ObserveWorkers = runtime.NumCPU()
		cfg.CrawlWorkers = runtime.NumCPU()
		cfg.Telemetry = telemetry.New()
		s := searchseizure.NewStudy(cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.World.RunDay(simclock.Day(0))
		}
	})
	telemetryNs := telemetryRes.NsPerOp
	rep.Results = append(rep.Results, telemetryRes)
	if parallelNs > 0 {
		rep.TelemetryOverheadPct = (telemetryNs - parallelNs) / parallelNs * 100
		fmt.Fprintf(os.Stderr, "%-28s %11.2f%%\n", "telemetry overhead", rep.TelemetryOverheadPct)
	}

	// Steady-state page generation: the crawler's per-fetch cost once the
	// page memo is warm. These are the numbers the pooled-scratch rewrite
	// drove to zero; the ratchet keeps them there.
	hr := rng.New(7)
	specs := campaign.Roster(simclock.StudyWindow())
	deps := campaign.DeployAll(hr.Sub("deploy"), specs, 0.02)
	gen := htmlgen.New(hr)
	dw := deps[0].Doorways[0]
	terms := []string{
		"cheap beats by dre", "beats by dre outlet", "discount beats",
		"beats studio sale", "dre headphones cheap", "beats pro outlet",
	}
	doorwayRes := runMin("HtmlgenDoorwayPage", *samples, func(b *testing.B) {
		gen.DoorwayCrawlerPage(dw, terms)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			gen.DoorwayCrawlerPage(dw, terms)
		}
	})
	rep.Results = append(rep.Results, doorwayRes)
	st := deps[0].Stores[0]
	storeRes := runMin("HtmlgenStorePage", *samples, func(b *testing.B) {
		gen.StorePage(st, st.Domains[0])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			gen.StorePage(st, st.Domains[0])
		}
	})
	rep.Results = append(rep.Results, storeRes)

	tripletsRes := runMin("Triplets", *samples, func(b *testing.B) {
		doc := strings.Repeat(`<div class="product"><a href="/php?p=cheap">Buy</a>`+
			`<img src="http://img.example.com/p.png"></div>`, 120)
		b.ReportAllocs()
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			htmlparse.Triplets(doc)
		}
	})
	rep.Results = append(rep.Results, tripletsRes)

	// Time one full sslint pass. Wall clock is the right unit here — the
	// linter gates every CI run, so its end-to-end latency is the cost
	// developers actually pay.
	sslintStart := time.Now()
	root, err := sslintModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sslint timing:", err)
		os.Exit(1)
	}
	loader, err := load.NewModuleLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sslint timing:", err)
		os.Exit(1)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sslint timing:", err)
		os.Exit(1)
	}
	findings, err := lint.Run(pkgs, lint.All(), lint.DefaultScope())
	if err != nil {
		fmt.Fprintln(os.Stderr, "sslint timing:", err)
		os.Exit(1)
	}
	rep.SslintWallMs = float64(time.Since(sslintStart).Microseconds()) / 1000
	rep.SslintFindings = len(findings)
	fmt.Fprintf(os.Stderr, "%-28s %10.1fms %8d finding(s)\n", "sslint ./...", rep.SslintWallMs, len(findings))

	rep.Metrics = metrics{
		SimulatedDaysPerSec:       1e9 / parallelNs,
		DayAllocsPerOp:            parallelRes.AllocsPerOp,
		HtmlgenDoorwayAllocsPerOp: doorwayRes.AllocsPerOp,
		HtmlgenStoreAllocsPerOp:   storeRes.AllocsPerOp,
		TripletsAllocsPerOp:       tripletsRes.AllocsPerOp,
		TelemetryOverheadPct:      rep.TelemetryOverheadPct,
		SslintWallMs:              rep.SslintWallMs,
	}
	fmt.Fprintf(os.Stderr, "%-28s %12.2f days/sec\n", "throughput", rep.Metrics.SimulatedDaysPerSec)

	// Run one small faults-moderate study with a live registry and archive
	// its metrics snapshot: fetch-chain shape, retries, breaker trips and
	// injected-fault tallies become part of the per-commit JSON diff.
	reg := telemetry.New()
	study, err := searchseizure.New(benchCfg(),
		searchseizure.WithFaults("moderate"),
		searchseizure.WithTelemetry(reg),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "telemetry study:", err)
		os.Exit(1)
	}
	if _, err := study.RunContext(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "telemetry study:", err)
		os.Exit(1)
	}
	// Time one checkpoint save/load cycle over the finished study: the
	// snapshot export, codec and atomic-write protocol on the way out, the
	// recovery scan and decode on the way back. The manager records the
	// same numbers into reg's checkpoint_{save,load}_ms histograms, so they
	// also land in the archived telemetry snapshot below.
	ckDir, err := os.MkdirTemp("", "benchjson-ckpt-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkpoint timing:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(ckDir)
	mgr, err := checkpoint.NewManager(checkpoint.Options{Dir: ckDir, Telemetry: reg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkpoint timing:", err)
		os.Exit(1)
	}
	saveStart := time.Now()
	if err := mgr.Save(study.World.Snapshot()); err != nil {
		fmt.Fprintln(os.Stderr, "checkpoint timing:", err)
		os.Exit(1)
	}
	rep.Metrics.CheckpointSaveMs = float64(time.Since(saveStart).Microseconds()) / 1000
	loadStart := time.Now()
	if _, err := mgr.Load(); err != nil {
		fmt.Fprintln(os.Stderr, "checkpoint timing:", err)
		os.Exit(1)
	}
	rep.Metrics.CheckpointLoadMs = float64(time.Since(loadStart).Microseconds()) / 1000
	fmt.Fprintf(os.Stderr, "%-28s save %.1fms load %.1fms\n", "checkpoint cycle",
		rep.Metrics.CheckpointSaveMs, rep.Metrics.CheckpointLoadMs)

	// Service-plane numbers: launch one miniature study through the real
	// POST /v1/studies handler and drive its simulated-web route; the
	// latency histogram comes from the service's own telemetry registry.
	svcDir, err := os.MkdirTemp("", "benchjson-svc-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "service timing:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(svcDir)
	svcReg := telemetry.New()
	svcMgr, err := studysvc.NewManager(studysvc.Options{
		BaseDir: svcDir, Budget: runtime.NumCPU(), MaxActive: 2, Telemetry: svcReg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "service timing:", err)
		os.Exit(1)
	}
	svcSrv := httptest.NewServer(svcMgr.Handler())
	noTail := false
	specRaw, _ := json.Marshal(searchseizure.StudySpec{
		Seed: 1, Days: 1, TermsPerVertical: 3, SlotsPerTerm: 20,
		ExtendedTail: &noTail, CheckpointEvery: 50,
	})
	launchStart := time.Now()
	resp, err := http.Post(svcSrv.URL+"/v1/studies", "application/json", bytes.NewReader(specRaw))
	if err != nil {
		fmt.Fprintln(os.Stderr, "service timing:", err)
		os.Exit(1)
	}
	rep.Metrics.APILaunchMs = float64(time.Since(launchStart).Microseconds()) / 1000
	var launched struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&launched); err != nil {
		fmt.Fprintln(os.Stderr, "service timing:", err)
		os.Exit(1)
	}
	resp.Body.Close()
	dresp, err := http.Get(svcSrv.URL + "/v1/studies/" + launched.ID + "/domains?limit=1")
	if err != nil {
		fmt.Fprintln(os.Stderr, "service timing:", err)
		os.Exit(1)
	}
	var doms struct {
		Domains []string `json:"domains"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&doms); err != nil || len(doms.Domains) == 0 {
		fmt.Fprintln(os.Stderr, "service timing: no domains:", err)
		os.Exit(1)
	}
	dresp.Body.Close()
	serpURL := fmt.Sprintf("%s/v1/studies/%s/web/?simhost=%s&u=/", svcSrv.URL, launched.ID, doms.Domains[0])
	for i := 0; i < 500; i++ {
		wr, err := http.Get(serpURL)
		if err != nil {
			fmt.Fprintln(os.Stderr, "service timing:", err)
			os.Exit(1)
		}
		io.Copy(io.Discard, wr.Body)
		wr.Body.Close()
	}
	rep.Metrics.SerpReqP99Us = svcReg.Snapshot().Histograms["api_req_serp_us"].Quantile(0.99)
	fmt.Fprintf(os.Stderr, "%-28s launch %.1fms serp p99 %.0fus\n", "service plane",
		rep.Metrics.APILaunchMs, rep.Metrics.SerpReqP99Us)
	shCtx, shCancel := context.WithTimeout(context.Background(), time.Minute)
	if err := svcMgr.Shutdown(shCtx); err != nil {
		fmt.Fprintln(os.Stderr, "service timing:", err)
		os.Exit(1)
	}
	shCancel()
	svcSrv.Close()

	snap := reg.Snapshot()
	rep.Telemetry = &snap

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)

	if *writeBaseline != "" {
		bl := baselineFile{
			GoVersion:  rep.GoVersion,
			GOOS:       rep.GOOS,
			GOARCH:     rep.GOARCH,
			NumCPU:     rep.NumCPU,
			GoMaxProcs: rep.GoMaxProcs,
			Samples:    rep.Samples,
			Metrics:    rep.Metrics,
		}
		data, err := json.MarshalIndent(bl, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "marshal baseline:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*writeBaseline, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "write baseline:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *writeBaseline)
		return
	}

	if *baselinePath != "" {
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "baseline:", err)
			os.Exit(1)
		}
		var base baselineFile
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintln(os.Stderr, "baseline:", err)
			os.Exit(1)
		}
		if base.GoVersion != rep.GoVersion || base.NumCPU != rep.NumCPU {
			fmt.Fprintf(os.Stderr, "note: baseline host differs (%s/%d CPUs vs %s/%d) — throughput comparisons are indicative\n",
				base.GoVersion, base.NumCPU, rep.GoVersion, rep.NumCPU)
		}
		if n := compareBaseline(base, rep.Metrics); n > 0 {
			fmt.Fprintf(os.Stderr, "bench ratchet: %d metric(s) regressed past their slack vs %s\n", n, *baselinePath)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench ratchet: all metrics within slack of %s\n", *baselinePath)
	}
}
