// Command benchjson runs the day-pipeline benchmark suite through
// testing.Benchmark and writes the results as machine-readable JSON
// (BENCH_daypipeline.json by default), so CI can archive per-commit
// numbers and diff them across runs.
//
// Usage:
//
//	benchjson [-o BENCH_daypipeline.json] [-benchtime 1x]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	searchseizure "repro"
	"repro/internal/htmlparse"
	"repro/internal/simclock"
)

// result is one benchmark's measurements in flat JSON-friendly form.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// report is the file's top-level shape.
type report struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Results   []result `json:"results"`
}

// benchCfg mirrors the root package's ablationConfig: small enough that a
// full study fits in a CI step.
func benchCfg() searchseizure.Config {
	cfg := searchseizure.TestConfig()
	cfg.TermsPerVertical = 4
	cfg.SlotsPerTerm = 20
	cfg.ExtendedTail = false
	return cfg
}

func run(name string, fn func(b *testing.B)) result {
	r := testing.Benchmark(fn)
	fmt.Fprintf(os.Stderr, "%-28s %12d ns/op %8d allocs/op\n", name, r.NsPerOp(), r.AllocsPerOp())
	return result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func main() {
	out := flag.String("o", "BENCH_daypipeline.json", "output file")
	flag.Parse()

	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}

	rep.Results = append(rep.Results, run("FullStudy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := searchseizure.NewStudy(benchCfg()).Run()
			if d.TotalPSRs() == 0 {
				b.Fatal("study produced no PSRs")
			}
		}
	}))

	rep.Results = append(rep.Results, run("SimulatedDaySerial", func(b *testing.B) {
		cfg := benchCfg()
		cfg.ObserveWorkers = 1
		s := searchseizure.NewStudy(cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.World.RunDay(simclock.Day(0))
		}
	}))

	rep.Results = append(rep.Results, run("SimulatedDayParallel", func(b *testing.B) {
		cfg := benchCfg()
		cfg.ObserveWorkers = runtime.NumCPU()
		cfg.CrawlWorkers = runtime.NumCPU()
		s := searchseizure.NewStudy(cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.World.RunDay(simclock.Day(0))
		}
	}))

	rep.Results = append(rep.Results, run("Triplets", func(b *testing.B) {
		doc := strings.Repeat(`<div class="product"><a href="/php?p=cheap">Buy</a>`+
			`<img src="http://img.example.com/p.png"></div>`, 120)
		b.ReportAllocs()
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			htmlparse.Triplets(doc)
		}
	}))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
