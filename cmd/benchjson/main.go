// Command benchjson runs the day-pipeline benchmark suite through
// testing.Benchmark and writes the results as machine-readable JSON
// (BENCH_daypipeline.json by default), so CI can archive per-commit
// numbers and diff them across runs.
//
// Beyond the raw timings the report carries the observability layer's two
// contract numbers: telemetry_overhead_pct compares the day pipeline with a
// live telemetry registry against the no-op sink (CI asserts it stays under
// 2%), and the telemetry block is a full metrics snapshot from a
// faults-moderate study so counter regressions (retry storms, cache-hit
// collapses) show up in the archived JSON diffs.
//
// Usage:
//
//	benchjson [-o BENCH_daypipeline.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	searchseizure "repro"
	"repro/internal/htmlparse"
	"repro/internal/lint"
	"repro/internal/lint/load"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// result is one benchmark's measurements in flat JSON-friendly form.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// report is the file's top-level shape.
type report struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Results   []result `json:"results"`
	// TelemetryOverheadPct is SimulatedDayTelemetry vs SimulatedDayParallel:
	// the day-pipeline cost of running with a live registry relative to the
	// no-op sink. The contract (asserted in CI) is < 2%.
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`
	// Telemetry is the metrics snapshot of a small faults-moderate study,
	// so the archived JSON captures workload shape (fetch chains, retries,
	// breaker trips, injected faults), not just wall time.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
	// SslintWallMs is one full sslint pass over ./... — load, type-check,
	// fact propagation, all analyzers — so analyzer performance regressions
	// land in the same per-commit diff as the pipeline numbers.
	SslintWallMs float64 `json:"sslint_wall_ms"`
	// SslintFindings counts the pass's raw (pre-baseline) findings; CI
	// gates on cmd/sslint separately, this is just cross-checkable context
	// for the timing.
	SslintFindings int `json:"sslint_findings"`
}

// benchCfg mirrors the root package's ablationConfig: small enough that a
// full study fits in a CI step.
func benchCfg() searchseizure.Config {
	cfg := searchseizure.TestConfig()
	cfg.TermsPerVertical = 4
	cfg.SlotsPerTerm = 20
	cfg.ExtendedTail = false
	return cfg
}

func run(name string, fn func(b *testing.B)) result {
	r := testing.Benchmark(fn)
	fmt.Fprintf(os.Stderr, "%-28s %12d ns/op %8d allocs/op\n", name, r.NsPerOp(), r.AllocsPerOp())
	return result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// runMin takes the best of `samples` runs. The overhead contract compares
// two ~10ms pipelines whose single-sample noise on shared CI hardware is
// several percent — larger than the quantity under test — and min-of-N is
// the usual estimator for "the code's cost without the machine's mood".
func runMin(name string, samples int, fn func(b *testing.B)) result {
	best := run(name, fn)
	for i := 1; i < samples; i++ {
		if r := run(name, fn); r.NsPerOp < best.NsPerOp {
			best = r
		}
	}
	return best
}

// sslintModuleRoot walks up from the working directory to go.mod, so the
// timing works whether CI runs benchjson from the root or a subdirectory.
func sslintModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func main() {
	out := flag.String("o", "BENCH_daypipeline.json", "output file")
	flag.Parse()

	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}

	rep.Results = append(rep.Results, run("FullStudy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := searchseizure.NewStudy(benchCfg()).Run()
			if d.TotalPSRs() == 0 {
				b.Fatal("study produced no PSRs")
			}
		}
	}))

	rep.Results = append(rep.Results, run("SimulatedDaySerial", func(b *testing.B) {
		cfg := benchCfg()
		cfg.ObserveWorkers = 1
		s := searchseizure.NewStudy(cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.World.RunDay(simclock.Day(0))
		}
	}))

	// The two sides of the overhead contract are measured min-of-3 so the
	// reported delta is instrumentation cost, not scheduler noise.
	const overheadSamples = 3
	var parallelNs, telemetryNs float64
	parallelRes := runMin("SimulatedDayParallel", overheadSamples, func(b *testing.B) {
		cfg := benchCfg()
		cfg.ObserveWorkers = runtime.NumCPU()
		cfg.CrawlWorkers = runtime.NumCPU()
		s := searchseizure.NewStudy(cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.World.RunDay(simclock.Day(0))
		}
	})
	parallelNs = parallelRes.NsPerOp
	rep.Results = append(rep.Results, parallelRes)

	// Same pipeline with a live registry attached: the delta against
	// SimulatedDayParallel is the telemetry layer's whole cost.
	telemetryRes := runMin("SimulatedDayTelemetry", overheadSamples, func(b *testing.B) {
		cfg := benchCfg()
		cfg.ObserveWorkers = runtime.NumCPU()
		cfg.CrawlWorkers = runtime.NumCPU()
		cfg.Telemetry = telemetry.New()
		s := searchseizure.NewStudy(cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.World.RunDay(simclock.Day(0))
		}
	})
	telemetryNs = telemetryRes.NsPerOp
	rep.Results = append(rep.Results, telemetryRes)
	if parallelNs > 0 {
		rep.TelemetryOverheadPct = (telemetryNs - parallelNs) / parallelNs * 100
		fmt.Fprintf(os.Stderr, "%-28s %11.2f%%\n", "telemetry overhead", rep.TelemetryOverheadPct)
	}

	rep.Results = append(rep.Results, run("Triplets", func(b *testing.B) {
		doc := strings.Repeat(`<div class="product"><a href="/php?p=cheap">Buy</a>`+
			`<img src="http://img.example.com/p.png"></div>`, 120)
		b.ReportAllocs()
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			htmlparse.Triplets(doc)
		}
	}))

	// Time one full sslint pass. Wall clock is the right unit here — the
	// linter gates every CI run, so its end-to-end latency is the cost
	// developers actually pay.
	sslintStart := time.Now()
	root, err := sslintModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sslint timing:", err)
		os.Exit(1)
	}
	loader, err := load.NewModuleLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sslint timing:", err)
		os.Exit(1)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sslint timing:", err)
		os.Exit(1)
	}
	findings, err := lint.Run(pkgs, lint.All(), lint.DefaultScope())
	if err != nil {
		fmt.Fprintln(os.Stderr, "sslint timing:", err)
		os.Exit(1)
	}
	rep.SslintWallMs = float64(time.Since(sslintStart).Microseconds()) / 1000
	rep.SslintFindings = len(findings)
	fmt.Fprintf(os.Stderr, "%-28s %10.1fms %8d finding(s)\n", "sslint ./...", rep.SslintWallMs, len(findings))

	// Run one small faults-moderate study with a live registry and archive
	// its metrics snapshot: fetch-chain shape, retries, breaker trips and
	// injected-fault tallies become part of the per-commit JSON diff.
	reg := telemetry.New()
	study, err := searchseizure.New(benchCfg(),
		searchseizure.WithFaults("moderate"),
		searchseizure.WithTelemetry(reg),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "telemetry study:", err)
		os.Exit(1)
	}
	if _, err := study.RunContext(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "telemetry study:", err)
		os.Exit(1)
	}
	snap := reg.Snapshot()
	rep.Telemetry = &snap

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
