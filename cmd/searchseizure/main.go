// Command searchseizure runs the full study end-to-end and prints every
// reproduced table and figure, in the paper's order.
//
// Usage:
//
//	searchseizure [-scale 0.1] [-terms 20] [-slots 100] [-seed 1] [-ablations]
//	              [-faults off|moderate|severe] [-telemetry] [-progress]
//
// The defaults run a mid-size study in a couple of minutes; -scale 1
// -terms 100 -slots 100 is paper scale. -progress prints a live per-day
// stage report to stderr while the study runs; -telemetry additionally
// dumps the collected runtime metrics after the run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	searchseizure "repro"
	"repro/internal/cli"
	"repro/internal/export"
)

func main() {
	var (
		scale     = flag.Float64("scale", 0.06, "infrastructure scale (1.0 = paper scale)")
		terms     = flag.Int("terms", 10, "search terms per vertical (paper: 100)")
		slots     = flag.Int("slots", 50, "results per term (paper: 100)")
		ablations = flag.Bool("ablations", false, "also run the design-choice ablations (slow)")
		out       = flag.String("out", "", "export summary.json and series CSVs into this directory")
	)
	shared := cli.RegisterStudyFlags(flag.CommandLine, 1, false)
	flag.Parse()

	cfg := searchseizure.DefaultConfig()
	cfg.Scale = *scale
	cfg.TermsPerVertical = *terms
	cfg.SlotsPerTerm = *slots
	cfg.Seed = shared.Seed()
	cfg.TailCampaigns = 18
	cfg.SeedDocsTarget = 350

	reg := shared.Registry()
	if shared.ProgressEnabled() {
		cli.EnableProgress(reg, os.Stderr)
	}

	fmt.Printf("building world (scale=%.2f, %d terms x %d slots, seed %d)...\n",
		cfg.Scale, cfg.TermsPerVertical, cfg.SlotsPerTerm, cfg.Seed)
	start := time.Now()
	study, err := searchseizure.New(cfg,
		searchseizure.WithFaults(shared.FaultProfileName()),
		searchseizure.WithTelemetry(reg),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("world ready in %v; classifier 10-fold CV accuracy %.1f%% (paper: 86.8%%)\n",
		time.Since(start).Round(time.Millisecond), 100*study.World.CVAccuracy)

	fmt.Println("running the longitudinal study (2013-11-13 .. 2014-08-31)...")
	start = time.Now()
	data, err := study.RunContext(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("study complete in %v: %d PSR observations, %d doorways, %d stores, %.0f%% attributed\n",
		time.Since(start).Round(time.Millisecond),
		data.TotalPSRs(), data.TotalDoorways(), data.TotalStores(),
		100*data.AttributedShare())
	if study.World.Faults.Enabled() {
		st := study.World.Resilient.Stats()
		fmt.Printf("fault profile %q: crawl coverage %.1f%%, %d outage days; %d fetch attempts (%d retries, %d failed chains, %d short-circuited), %s simulated backoff\n",
			shared.FaultProfileName(), 100*data.MeanCoverage(), data.OutageDays(),
			st.Attempts, st.Retries, st.Failures, st.ShortCircuit,
			(time.Duration(st.SimBackoffMS) * time.Millisecond).Round(time.Millisecond))
	}
	fmt.Println()

	if *out != "" {
		if err := export.Dir(*out, data); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("exported dataset artifacts to %s\n\n", *out)
	}

	for _, e := range searchseizure.Experiments() {
		tbl, err := study.Experiment(e.ID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("================ %s ================\n%s\n", tbl.ID, tbl)
	}

	if *ablations {
		abl := searchseizure.TestConfig()
		abl.Seed = shared.Seed()
		abl.ExtendedTail = false
		for _, a := range searchseizure.Ablations() {
			tbl, err := searchseizure.RunAblation(a.ID, abl)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", a.ID, err)
				os.Exit(1)
			}
			fmt.Printf("================ %s ================\n%s\n", tbl.ID, tbl)
		}
	}

	if reg != nil {
		fmt.Fprintln(os.Stderr, "---- telemetry (Prometheus text) ----")
		_ = reg.WritePrometheus(os.Stderr)
	}
}
