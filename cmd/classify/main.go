// Command classify trains and evaluates the campaign classifier standalone:
// it generates the labeled storefront/doorway corpus, runs k-fold
// cross-validation under the chosen regulariser, and prints each campaign's
// learned signature features.
//
// Usage:
//
//	classify [-scale 0.2] [-folds 10] [-reg l1|l2|none] [-top 5] [-seed 71]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/campaign"
	"repro/internal/classify"
	"repro/internal/htmlgen"
	"repro/internal/rng"
	"repro/internal/simclock"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.2, "infrastructure scale (drives corpus size)")
		folds = flag.Int("folds", 10, "cross-validation folds")
		reg   = flag.String("reg", "l1", "regulariser: l1, l2 or none")
		top   = flag.Int("top", 5, "signature features to print per campaign")
		seed  = flag.Uint64("seed", 71, "corpus seed")
	)
	flag.Parse()

	opts := classify.DefaultOptions()
	switch *reg {
	case "l1":
		opts.Reg = classify.L1
	case "l2":
		opts.Reg = classify.L2
	case "none":
		opts.Reg = classify.NoReg
	default:
		fmt.Fprintf(os.Stderr, "unknown regulariser %q\n", *reg)
		os.Exit(2)
	}

	r := rng.New(*seed)
	specs := campaign.Roster(simclock.StudyWindow())
	deps := campaign.DeployAll(r.Sub("deploy"), specs, *scale)
	gen := htmlgen.New(r)
	docs := classify.BuildCorpus(r, gen, deps, classify.DefaultCorpusOptions())
	fmt.Printf("corpus: %d labeled documents across %d campaigns\n", len(docs), len(specs))

	acc := classify.CrossValidate(docs, *folds, opts)
	fmt.Printf("%d-fold CV accuracy (%s): %.1f%% (paper, L1: 86.8%%; chance: %.1f%%)\n",
		*folds, opts.Reg, 100*acc, 100.0/float64(len(specs)))

	model := classify.Train(docs, opts)
	nz, tot := model.Sparsity()
	fmt.Printf("model: %d/%d nonzero weights (%.1f%%)\n\n", nz, tot, 100*float64(nz)/float64(tot))

	names := append([]string(nil), model.Classes...)
	sort.Strings(names)
	for _, name := range names {
		feats := model.TopFeatures(name, *top)
		if len(feats) == 0 {
			continue
		}
		fmt.Printf("%-16s %v\n", name, feats)
	}
}
