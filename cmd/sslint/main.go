// Command sslint is the multichecker for the repo's determinism and
// nil-safety analyzers (internal/lint). It loads the requested packages
// (default ./...), runs every analyzer under the default scope, subtracts
// the checked-in ratchet baseline and prints the fresh findings; the exit
// status is 1 if anything survived (fresh findings or stale baseline
// entries), 2 on operational failure.
//
// Usage:
//
//	go run ./cmd/sslint [-json] [-sarif file] [-baseline file] [-write-baseline] [-write-schema [-schema-dir dir]] [-list] [-unscoped] [packages...]
//
// Package patterns are module-relative ("./...", "./internal/core",
// "repro/internal/..."). -json emits machine-readable findings for CI
// annotation, sorted by (file, line, analyzer) with module-relative
// forward-slash paths, so the artifact is byte-stable across machines.
// -sarif additionally writes a SARIF 2.1.0 log for code-scanning upload.
// -unscoped drops the scope configuration and runs every analyzer over
// every requested package — useful to preview what the gate would say
// about code that is currently exempt.
//
// The baseline (lint.baseline.json at the module root by default) is the
// one-way ratchet: findings listed there are grandfathered debt, anything
// new fails, and a baseline entry that no longer matches any finding also
// fails — pay-down must shrink the file. -write-baseline regenerates it
// from the current findings (for the commit that introduces the gate or
// intentionally accepts debt; review the diff).
//
// The schema goldens (api.schema.json, ckpt.schema.json at the module
// root) pin the /v1 wire contract and the checkpoint payload shape; the
// wireschema/ckptschema analyzers fail on any drift from them.
// -write-schema re-extracts both from source and rewrites the goldens —
// the sanctioned move after a deliberate additive API change or a
// SnapshotVersion bump; review the diff like any contract change.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit fresh findings as JSON (for CI annotation)")
	sarifOut := flag.String("sarif", "", "write fresh findings as SARIF 2.1.0 to `file` (\"-\" for stdout)")
	baselinePath := flag.String("baseline", "", "ratchet baseline `file` (default: lint.baseline.json at the module root)")
	writeBaseline := flag.Bool("write-baseline", false, "regenerate the baseline from current findings and exit")
	writeSchema := flag.Bool("write-schema", false, "re-extract api.schema.json and ckpt.schema.json goldens and exit")
	schemaDir := flag.String("schema-dir", "", "directory to write schema goldens into (default: the module root)")
	list := flag.Bool("list", false, "list analyzers and exit")
	unscoped := flag.Bool("unscoped", false, "ignore scope config: run all analyzers on all requested packages")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	loader, err := load.NewModuleLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	scope := lint.DefaultScope()
	if *unscoped {
		scope = nil
	}

	if *writeSchema {
		dir := *schemaDir
		if dir == "" {
			dir = root
		}
		api, ckpt := lint.BuildContracts(pkgs, lint.DefaultScope())
		if api == nil || ckpt == nil {
			fatal(fmt.Errorf("contract extraction found api=%v ckpt=%v; load ./... so both trigger packages are present", api != nil, ckpt != nil))
		}
		for _, g := range []struct {
			name string
			v    any
		}{{lint.APISchemaFile, api}, {lint.CkptSchemaFile, ckpt}} {
			path := filepath.Join(dir, g.name)
			if err := lint.WriteSchemaFile(path, g.v); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "sslint: wrote %s\n", path)
		}
		return
	}

	findings, err := lint.Run(pkgs, lint.All(), scope)
	if err != nil {
		fatal(err)
	}
	findings = lint.Finalize(findings, root)

	bpath := *baselinePath
	if bpath == "" {
		bpath = filepath.Join(root, lint.BaselineFile)
	}
	if *writeBaseline {
		if err := lint.BaselineOf(findings).Write(bpath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sslint: wrote %d baseline entr%s to %s\n",
			len(findings), plural(len(findings), "y", "ies"), bpath)
		return
	}
	baseline, err := lint.LoadBaseline(bpath)
	if err != nil {
		fatal(err)
	}
	fresh, stale := baseline.Apply(findings)

	switch {
	case *jsonOut:
		if fresh == nil {
			fresh = []lint.Finding{} // "[]", not "null", for annotation tooling
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fresh); err != nil {
			fatal(err)
		}
	default:
		for _, f := range fresh {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message)
		}
	}
	if *sarifOut != "" {
		data, err := lint.SARIF(fresh)
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if *sarifOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*sarifOut, data, 0o644); err != nil {
			fatal(err)
		}
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "sslint: stale baseline entry %s (%s, %s): the finding is gone — shrink %s\n",
			e.ID, e.Analyzer, e.File, filepath.Base(bpath))
	}
	if len(fresh) > 0 || len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "sslint: %d fresh finding(s), %d stale baseline entr%s\n",
			len(fresh), len(stale), plural(len(stale), "y", "ies"))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func firstLine(s string) string {
	for i := range s {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sslint:", err)
	os.Exit(2)
}
