// Command sslint is the multichecker for the repo's determinism and
// nil-safety analyzers (internal/lint). It loads the requested packages
// (default ./...), runs every analyzer under the default scope and prints
// findings; the exit status is 1 if anything was found, 2 on operational
// failure.
//
// Usage:
//
//	go run ./cmd/sslint [-json] [-list] [-unscoped] [packages...]
//
// Package patterns are module-relative ("./...", "./internal/core",
// "repro/internal/..."). -json emits machine-readable findings for CI
// annotation. -unscoped drops the scope configuration and runs every
// analyzer over every requested package — useful to preview what the gate
// would say about code that is currently exempt.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON (for CI annotation)")
	list := flag.Bool("list", false, "list analyzers and exit")
	unscoped := flag.Bool("unscoped", false, "ignore scope config: run all analyzers on all requested packages")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	loader, err := load.NewModuleLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	scope := lint.DefaultScope()
	if *unscoped {
		scope = nil
	}
	findings, err := lint.Run(pkgs, lint.All(), scope)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		if findings == nil {
			findings = []lint.Finding{} // "[]", not "null", for annotation tooling
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			rel := f.File
			if r, err := filepath.Rel(root, f.File); err == nil {
				rel = r
			}
			fmt.Printf("%s:%d:%d: %s: %s\n", rel, f.Line, f.Column, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sslint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func firstLine(s string) string {
	for i := range s {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sslint:", err)
	os.Exit(2)
}
