// Command experiments regenerates a single table or figure by id.
//
// Usage:
//
//	experiments -run table1 [-scale 0.06] [-terms 10] [-slots 50] [-seed 1] [-json]
//	experiments -list
//	experiments -run abl-l1      (ablations build their own worlds)
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	searchseizure "repro"
	"repro/internal/cli"
)

// emit prints a result table as text, or as {id, title, text} JSON with
// -json.
func emit(tbl searchseizure.Table, asJSON bool) {
	if !asJSON {
		fmt.Println(tbl)
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tbl); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func main() {
	var (
		run    = flag.String("run", "", "experiment or ablation id (see -list)")
		list   = flag.Bool("list", false, "list available experiments and ablations")
		scale  = flag.Float64("scale", 0.06, "infrastructure scale (1.0 = paper scale)")
		terms  = flag.Int("terms", 10, "search terms per vertical (paper: 100)")
		slots  = flag.Int("slots", 50, "results per term (paper: 100)")
		asJSON = flag.Bool("json", false, "emit the result as {id, title, text} JSON")
	)
	shared := cli.RegisterStudyFlags(flag.CommandLine, 1, false)
	flag.Parse()
	if shared.ProgressEnabled() {
		cli.EnableProgress(shared.Registry(), os.Stderr)
	}

	if *list || *run == "" {
		fmt.Println("experiments (tables and figures):")
		for _, e := range searchseizure.Experiments() {
			fmt.Printf("  %-13s %s\n", e.ID, e.Title)
		}
		fmt.Println("ablations (design choices; run alternate worlds):")
		for _, a := range searchseizure.Ablations() {
			fmt.Printf("  %-13s %s\n", a.ID, a.Title)
		}
		if *run == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := searchseizure.DefaultConfig()
	cfg.Scale = *scale
	cfg.TermsPerVertical = *terms
	cfg.SlotsPerTerm = *slots
	cfg.Seed = shared.Seed()
	cfg.TailCampaigns = 18
	cfg.SeedDocsTarget = 350

	if strings.HasPrefix(*run, "abl-") {
		abl := searchseizure.TestConfig()
		abl.Seed = shared.Seed()
		abl.ExtendedTail = false
		tbl, err := searchseizure.RunAblation(*run, abl)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		emit(tbl, *asJSON)
		return
	}

	study, err := searchseizure.New(cfg,
		searchseizure.WithFaults(shared.FaultProfileName()),
		searchseizure.WithTelemetry(shared.Registry()),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tbl, err := study.Experiment(*run)
	if err != nil {
		// Unknown ids are a typed error: answer with the registry instead
		// of making the user re-run with -list.
		if errors.Is(err, searchseizure.ErrUnknownExperiment) {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n", *run)
			for _, e := range study.ListExperiments() {
				fmt.Fprintf(os.Stderr, "  %-13s %s\n", e.ID, e.Title)
			}
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	emit(tbl, *asJSON)
}
