// Command experiments regenerates a single table or figure by id.
//
// Usage:
//
//	experiments -run table1 [-scale 0.06] [-terms 10] [-slots 50] [-seed 1]
//	experiments -list
//	experiments -run abl-l1      (ablations build their own worlds)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	searchseizure "repro"
)

func main() {
	var (
		run   = flag.String("run", "", "experiment or ablation id (see -list)")
		list  = flag.Bool("list", false, "list available experiments and ablations")
		scale = flag.Float64("scale", 0.06, "infrastructure scale (1.0 = paper scale)")
		terms = flag.Int("terms", 10, "search terms per vertical (paper: 100)")
		slots = flag.Int("slots", 50, "results per term (paper: 100)")
		seed  = flag.Uint64("seed", 1, "study seed")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments (tables and figures):")
		for _, e := range searchseizure.Experiments() {
			fmt.Printf("  %-13s %s\n", e.ID, e.Title)
		}
		fmt.Println("ablations (design choices; run alternate worlds):")
		for _, a := range searchseizure.Ablations() {
			fmt.Printf("  %-13s %s\n", a.ID, a.Title)
		}
		if *run == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := searchseizure.DefaultConfig()
	cfg.Scale = *scale
	cfg.TermsPerVertical = *terms
	cfg.SlotsPerTerm = *slots
	cfg.Seed = *seed
	cfg.TailCampaigns = 18
	cfg.SeedDocsTarget = 350

	if strings.HasPrefix(*run, "abl-") {
		abl := searchseizure.TestConfig()
		abl.Seed = *seed
		abl.ExtendedTail = false
		out, err := searchseizure.RunAblation(*run, abl)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(out)
		return
	}

	study := searchseizure.NewStudy(cfg)
	out, err := study.Experiment(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(out)
}
