package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// gatedHandler blocks each request until release is closed, signalling
// started on arrival — a stand-in for a slow page render caught mid-flight
// by a shutdown.
type gatedHandler struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGatedHandler() *gatedHandler {
	return &gatedHandler{started: make(chan struct{}), release: make(chan struct{})}
}

func (g *gatedHandler) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	g.once.Do(func() { close(g.started) })
	<-g.release
	rw.WriteHeader(http.StatusOK)
	io.WriteString(rw, "drained ok")
}

func TestServerHasExplicitDeadlines(t *testing.T) {
	srv := newServer(http.NotFoundHandler())
	if srv.ReadHeaderTimeout <= 0 || srv.WriteTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Fatalf("server missing I/O deadlines: %+v", srv)
	}
}

// TestSigtermDrainsInflightRequests is the shutdown smoke test: a SIGTERM
// arriving while a request is in flight must stop the listener but let the
// request finish with a complete response before serve returns.
func TestSigtermDrainsInflightRequests(t *testing.T) {
	g := newGatedHandler()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	srv := newServer(g)
	served := make(chan error, 1)
	go func() { served <- serve(ctx, srv, ln, 5*time.Second) }()

	base := "http://" + ln.Addr().String()
	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{body: string(b), err: err}
	}()

	<-g.started // request is now in flight
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	<-ctx.Done() // the signal reached the drain context

	// The listener must refuse new work while the old request drains.
	refused := false
	for i := 0; i < 100; i++ {
		if _, err := net.DialTimeout("tcp", ln.Addr().String(), 100*time.Millisecond); err != nil {
			refused = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !refused {
		t.Error("listener still accepting connections after SIGTERM")
	}

	close(g.release)
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request killed by shutdown: %v", r.err)
	}
	if r.body != "drained ok" {
		t.Fatalf("in-flight response truncated: %q", r.body)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve returned error after graceful drain: %v", err)
	}
}

// TestServeStopsOnContextCancel covers the programmatic path main uses when
// the crawl finishes: cancelling the context drains and returns nil.
func TestServeStopsOnContextCancel(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := newServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		io.WriteString(rw, "ok")
	}))
	served := make(chan error, 1)
	go func() { served <- serve(ctx, srv, ln, 5*time.Second) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after cancel")
	}
}

// TestHandlerForWithoutFaultsStillServes: the nil-plan stack (fault
// injection off) must pass requests through the deadline wrapper untouched.
func TestHandlerForWithoutFaultsStillServes(t *testing.T) {
	h := handlerFor(nil, http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		io.WriteString(rw, "page")
	}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := newServer(h)
	served := make(chan error, 1)
	go func() { served <- serve(ctx, srv, ln, time.Second) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(b) != "page" {
		t.Fatalf("got %d %q", resp.StatusCode, b)
	}
	cancel()
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestHealthAndReadyEndpoints is the probe smoke test: /healthz answers the
// moment the server is up, while /readyz stays 503 until recovery flips the
// ready bit — the contract an orchestrator's probes rely on — and both keep
// answering alongside /metrics. A nil ready bit (no recovery phase) is
// ready immediately.
func TestHealthAndReadyEndpoints(t *testing.T) {
	reg := telemetry.New()
	var ready atomic.Bool
	h := adminHandler(reg, &ready, http.NotFoundHandler())

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := newServer(h)
	served := make(chan error, 1)
	go func() { served <- serve(ctx, srv, ln, time.Second) }()
	base := "http://" + ln.Addr().String()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz before recovery = %d %q, want 200 ok", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before recovery = %d, want 503", code)
	}
	ready.Store(true)
	if code, body := get("/readyz"); code != 200 || body != "ready\n" {
		t.Fatalf("/readyz after recovery = %d %q, want 200 ready", code, body)
	}
	if code, _ := get("/metrics"); code != 200 {
		t.Fatalf("/metrics = %d, want 200", code)
	}

	// Without a recovery phase the probes are green from the start.
	h2 := adminHandler(reg, nil, http.NotFoundHandler())
	rec := func(path string) int {
		req, _ := http.NewRequest("GET", path, nil)
		rw := &statusRecorder{ResponseWriter: noopWriter{}, code: 200}
		h2.ServeHTTP(rw, req)
		return rw.code
	}
	if code := rec("/readyz"); code != 200 {
		t.Fatalf("nil-ready /readyz = %d, want 200", code)
	}

	cancel()
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

type noopWriter struct{}

func (noopWriter) Header() http.Header         { return http.Header{} }
func (noopWriter) Write(b []byte) (int, error) { return len(b), nil }
func (noopWriter) WriteHeader(int)             {}

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(c int) {
	r.code = c
	r.ResponseWriter.WriteHeader(c)
}

// TestAdminEndpointsServeAheadOfFaults is the admin-plane smoke test: with
// a severe fault profile burning the data plane, /metrics must still answer
// with Prometheus text carrying the crawler counters, and /debug/vars must
// serve the JSON snapshot. Regular page requests keep flowing through the
// fault layer underneath.
func TestAdminEndpointsServeAheadOfFaults(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("crawler_fetch_attempts_total").Add(9)

	web := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		io.WriteString(rw, "simulated page")
	})
	h := adminHandler(reg, nil, web)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := newServer(h)
	served := make(chan error, 1)
	go func() { served <- serve(ctx, srv, ln, time.Second) }()
	base := "http://" + ln.Addr().String()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, "crawler_fetch_attempts_total 9") ||
		!strings.Contains(body, "# TYPE crawler_fetch_attempts_total counter") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 ||
		!strings.Contains(body, `"crawler_fetch_attempts_total": 9`) {
		t.Fatalf("/debug/vars = %d %q", code, body)
	}
	if code, body := get("/?simhost=x&u=/"); code != 200 || body != "simulated page" {
		t.Fatalf("fallthrough to web = %d %q", code, body)
	}

	cancel()
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
}
