// Command crawlerd serves the study-service plane and demonstrates the
// measurement pipeline over a real network socket.
//
// Service mode (-data-dir) is the primary face: a versioned JSON API
// (/v1/studies, see internal/studysvc) runs many concurrent studies —
// each with its own seed, fault profile, checkpoint directory and
// telemetry registry — over one shared worker budget, recovers the whole
// fleet from disk on boot, and drains gracefully on SIGTERM (every study
// stops at its day boundary and writes a final checkpoint).
//
// The legacy single-study modes remain: -checkpoint runs one checkpointed
// study; the default mode builds one world, serves its web, and crawls it.
// All three modes resolve their configuration through the same validated
// searchseizure.StudySpec that POST /v1/studies accepts, so a flag
// combination the API would reject is rejected identically at the CLI.
//
// Usage:
//
//	crawlerd -data-dir /var/lib/searchseizure [-budget 8] [-max-active 2]
//	crawlerd -checkpoint DIR [-checkpoint-every 1] [-faults off]
//	crawlerd [-addr 127.0.0.1:0] [-day 30] [-max 200] [-serve-only] [-faults off]
//
// With -serve-only it just serves the web (useful for poking at doorways
// with curl: set the User-Agent and Referer headers and the ?simhost=
// query parameter to select the site). With -faults moderate|severe the
// server injects deterministic faults on the wire — dropped connections,
// 502s, truncated bodies — and the crawler runs with retries and circuit
// breakers, so the whole resilient pipeline can be exercised over real
// sockets.
//
// Telemetry is on by default (disable with -telemetry=false): the admin
// endpoints /metrics (Prometheus text), /debug/vars (JSON snapshot) and
// /debug/pprof/* (Go profiling) are served on the same listener, ahead of
// the simulated web and outside the fault-injection layer, so the live
// fetch/retry/circuit-breaker counters stay reachable even under a severe
// fault profile.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"sync/atomic"
	"syscall"
	"time"

	searchseizure "repro"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/faults"
	"repro/internal/searchsim"
	"repro/internal/simclock"
	"repro/internal/simweb"
	"repro/internal/studysvc"
	"repro/internal/telemetry"

	"repro/internal/brands"
)

// requestTimeout bounds one simulated-page render; handlerFor mounts it via
// http.TimeoutHandler inside the fault layer (the fault layer needs the raw
// connection for its drop injections).
const requestTimeout = 5 * time.Second

// newServer wraps a handler in an http.Server with explicit I/O deadlines,
// so a stuck or malicious client cannot pin a connection (and a wedged
// handler cannot pin a response) forever.
func newServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      15 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
}

// handlerFor assembles the serving stack: per-request deadline innermost,
// fault injection outermost (injection decides per request whether to sever
// the raw connection, answer 502, or truncate the page).
func handlerFor(p *faults.Plan, web http.Handler) http.Handler {
	return faults.Handler(p, http.TimeoutHandler(web, requestTimeout, "simulated web: render timeout"))
}

// adminHandler mounts the observability endpoints ahead of the simulated
// web: /healthz, /readyz, /metrics, /debug/vars and /debug/pprof/* answer
// directly (and are never fault-injected — the admin plane must stay
// reachable while the data plane burns); everything else falls through to
// web. The simulated web addresses pages via the ?simhost= query parameter
// with the page path in ?u=, so reserving these URL paths shadows no
// simulated content. With telemetry off (nil reg) /metrics and /debug/vars
// serve empty documents; the pprof handlers work regardless.
//
// /healthz answers 200 whenever the process serves at all (liveness).
// /readyz gates on ready: in checkpoint mode it turns 200 only once
// crash recovery has completed, so an orchestrator never routes work to a
// replica still restoring state; a nil ready (no recovery phase) is
// always ready.
func adminHandler(reg *telemetry.Registry, ready *atomic.Bool, web http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		io.WriteString(rw, "ok\n")
	})
	mux.HandleFunc("/readyz", func(rw http.ResponseWriter, _ *http.Request) {
		if ready != nil && !ready.Load() {
			http.Error(rw, "recovering", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(rw, "ready\n")
	})
	mux.Handle("/metrics", reg.MetricsHandler())
	mux.Handle("/debug/vars", reg.VarsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", web)
	return mux
}

// serve runs srv on ln until ctx is cancelled, then shuts down gracefully:
// the listener closes immediately but in-flight requests drain (bounded by
// drainTimeout) before serve returns.
func serve(ctx context.Context, srv *http.Server, ln net.Listener, drainTimeout time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// runServiceMode is the study-service plane: the versioned /v1 JSON API
// over a studysvc.Manager, with the admin endpoints mounted ahead of it.
// On boot every study a previous process persisted under dataDir is
// recovered and resumed before /readyz turns 200; SIGTERM cancels the
// fleet at day boundaries, waits for final checkpoints, then drains the
// listener.
func runServiceMode(reg *telemetry.Registry, addr, dataDir string, budget, maxActive int) error {
	m, err := studysvc.NewManager(studysvc.Options{
		BaseDir:   dataDir,
		Budget:    budget,
		MaxActive: maxActive,
		Telemetry: reg,
		Logger:    log.New(os.Stdout, "", log.LstdFlags),
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	base := "http://" + ln.Addr().String()
	fmt.Printf("study service on %s\n", base)
	fmt.Printf("api: POST %s/v1/studies, GET %s/v1/studies\n", base, base)
	fmt.Printf("admin: %s/healthz, %s/readyz, %s/metrics\n", base, base, base)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var ready atomic.Bool
	srv := newServer(adminHandler(reg, &ready, m.Handler()))
	done := make(chan error, 1)
	go func() { done <- serve(ctx, srv, ln, 10*time.Second) }()

	recovered, err := m.RecoverAll()
	if err != nil {
		return err
	}
	if len(recovered) > 0 {
		fmt.Printf("recovered %d studies from %s\n", len(recovered), dataDir)
	}
	ready.Store(true)

	<-ctx.Done()
	fmt.Println("draining: cancelling studies at their day boundaries...")
	shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := m.Shutdown(shCtx); err != nil {
		return err
	}
	stop()
	if err := <-done; err != nil {
		return err
	}
	fmt.Println("drained, bye")
	return nil
}

// runStudyMode runs one full longitudinal study with durable checkpoints
// while serving the admin plane (and the simulated web) on addr. On boot it
// auto-recovers from the newest good snapshot before declaring /readyz; a
// SIGTERM/SIGINT stops the run at the next day boundary and writes a final
// checkpoint, so the next boot resumes exactly where this one drained.
func runStudyMode(spec searchseizure.StudySpec, reg *telemetry.Registry, addr, dir string, every int) error {
	fmt.Println("building simulated world...")
	s, err := searchseizure.NewFromSpec(spec,
		searchseizure.WithTelemetry(reg),
		searchseizure.WithCheckpoint(dir, every),
		searchseizure.WithLogger(log.New(os.Stdout, "", log.LstdFlags)))
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %d simulated domains on %s\n", s.World.Web.Domains(), base)
	fmt.Printf("admin: %s/healthz, %s/readyz, %s/metrics\n", base, base, base)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var ready atomic.Bool
	srv := newServer(adminHandler(reg, &ready, handlerFor(s.World.Faults, s.World.Web)))
	done := make(chan error, 1)
	go func() { done <- serve(ctx, srv, ln, 10*time.Second) }()

	if err := s.Recover(); err != nil {
		return err
	}
	ready.Store(true)

	data, runErr := s.RunContext(ctx)
	if runErr != nil {
		fmt.Printf("drained after day %d/%d; writing final checkpoint\n",
			data.DaysRun, s.World.Sim.Days())
		if err := s.Checkpoint(); err != nil {
			return err
		}
	} else {
		fmt.Printf("study complete: %d days, fingerprint %#x\n",
			data.DaysRun, uint64(data.Fingerprint()))
	}

	stop()
	if err := <-done; err != nil {
		return err
	}
	fmt.Println("drained, bye")
	return nil
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:0", "listen address")
		day       = flag.Int("day", 30, "simulation day to crawl")
		maxDom    = flag.Int("max", 200, "max domains to crawl")
		serveOnly = flag.Bool("serve-only", false, "serve the simulated web and wait")
		ckptDir   = flag.String("checkpoint", "", "checkpoint directory: run one full study with durable day snapshots, auto-recovering on boot")
		ckptEvery = flag.Int("checkpoint-every", 1, "days between checkpoints (with -checkpoint)")
		dataDir   = flag.String("data-dir", "", "service data directory: run the multi-tenant /v1 study API, recovering persisted studies on boot")
		budget    = flag.Int("budget", 0, "total simulation worker budget shared across studies (with -data-dir; 0 = GOMAXPROCS)")
		maxActive = flag.Int("max-active", 2, "max studies executing a day concurrently (with -data-dir)")
	)
	shared := cli.RegisterStudyFlags(flag.CommandLine, 1, true)
	flag.Parse()
	reg := shared.Registry()

	if *dataDir != "" {
		if err := runServiceMode(reg, *addr, *dataDir, *budget, *maxActive); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	// The single-study modes go through the same validated StudySpec as
	// POST /v1/studies: a flag combination the API rejects (an unknown
	// -faults profile, say) is rejected identically here, with the same
	// field-level codes.
	noTail := false
	spec := searchseizure.StudySpec{
		Preset:       "test",
		Seed:         int64(shared.Seed()),
		Faults:       shared.FaultProfileName(),
		ExtendedTail: &noTail,
	}
	if verr := spec.Validate(); verr != nil {
		fmt.Fprintln(os.Stderr, verr)
		os.Exit(2)
	}

	if *ckptDir != "" {
		if err := runStudyMode(spec, reg, *addr, *ckptDir, *ckptEvery); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	cfg, err := spec.Config()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Telemetry = reg
	faultCfg := cfg.Faults
	fmt.Println("building simulated world...")
	w := core.NewWorld(cfg)
	w.Engine.Advance(simclock.Day(*day))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %d simulated domains on %s\n", w.Web.Domains(), base)
	fmt.Printf("example: curl -H 'User-Agent: Googlebot' '%s/?simhost=<domain>&u=/'\n", base)
	if reg != nil {
		fmt.Printf("admin: %s/metrics (Prometheus), %s/debug/vars (JSON), %s/debug/pprof/\n", base, base, base)
	}
	if faultCfg.Enabled() {
		fmt.Printf("fault profile %q mounted on the wire\n", shared.FaultProfileName())
	}

	// SIGTERM/SIGINT drain the server instead of killing in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := newServer(adminHandler(reg, nil, handlerFor(w.Faults, w.Web)))

	if *serveOnly {
		if err := serve(ctx, srv, ln, 10*time.Second); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("drained, bye")
		return
	}
	done := make(chan error, 1)
	go func() { done <- serve(ctx, srv, ln, 10*time.Second) }()

	// Crawl today's SERPs over the real socket. Under fault injection the
	// HTTP fetcher is wrapped with the same retry + circuit-breaker policy
	// the in-process study pipeline uses.
	var fetch simweb.Fetcher = simweb.NewHTTPFetcher(base)
	var resilient *crawler.ResilientFetcher
	if faultCfg.Enabled() {
		resilient = crawler.NewResilientFetcher(fetch, crawler.DefaultResilience(), cfg.Seed)
		resilient.Instrument(reg)
		fetch = resilient
	}
	det := crawler.NewDetector(fetch)
	c := crawler.New(det)
	c.Instrument(reg)
	urls := make(map[string]string)
	for _, v := range brands.All() {
		w.Engine.EachSlot(v, func(_, _ int, s *searchsim.Slot) {
			if len(urls) < *maxDom {
				if _, dup := urls[s.Domain]; !dup {
					urls[s.Domain] = s.URL
				}
			}
		})
	}
	fmt.Printf("crawling %d unique result domains over HTTP...\n", len(urls))
	verdicts := c.CheckDomains(urls, simclock.Day(*day))

	type row struct {
		domain string
		v      crawler.Verdict
	}
	var poisoned []row
	unknown := 0
	for dom, v := range verdicts {
		if v.Cloaked {
			poisoned = append(poisoned, row{dom, v})
		}
		if v.Unknown {
			unknown++
		}
	}
	sort.Slice(poisoned, func(i, j int) bool { return poisoned[i].domain < poisoned[j].domain })
	fmt.Printf("\n%d of %d domains are cloaking:\n", len(poisoned), len(urls))
	for _, r := range poisoned {
		truth := "?"
		if spec, ok := w.TruthCampaign(r.v.StoreDomain); ok {
			truth = spec.Name
		}
		fmt.Printf("  %-34s %-16s store=%-30s campaign=%s\n",
			r.domain, r.v.Detector, r.v.StoreDomain, truth)
	}
	if resilient != nil {
		st := resilient.Stats()
		fmt.Printf("\n%d domains unknown (fetches failed; would be re-queued); %d attempts, %d retries, %d failed chains, %d short-circuited\n",
			unknown, st.Attempts, st.Retries, st.Failures, st.ShortCircuit)
	}

	// Drain the server before exiting.
	stop()
	if err := <-done; err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
