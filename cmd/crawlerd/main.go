// Command crawlerd demonstrates the measurement pipeline over a real
// network socket: it builds a simulated world, serves its web over HTTP on
// localhost, then points the Dagger/VanGogh crawler at it through the
// HTTP fetcher and prints what the crawl finds.
//
// Usage:
//
//	crawlerd [-addr 127.0.0.1:0] [-day 30] [-max 200] [-serve-only]
//
// With -serve-only it just serves the web (useful for poking at doorways
// with curl: set the User-Agent and Referer headers and the ?simhost=
// query parameter to select the site).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"

	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/searchsim"
	"repro/internal/simclock"
	"repro/internal/simweb"

	"repro/internal/brands"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:0", "listen address")
		day       = flag.Int("day", 30, "simulation day to crawl")
		maxDom    = flag.Int("max", 200, "max domains to crawl")
		serveOnly = flag.Bool("serve-only", false, "serve the simulated web and wait")
	)
	flag.Parse()

	cfg := core.TestConfig()
	cfg.ExtendedTail = false
	fmt.Println("building simulated world...")
	w := core.NewWorld(cfg)
	w.Engine.Advance(simclock.Day(*day))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %d simulated domains on %s\n", w.Web.Domains(), base)
	fmt.Printf("example: curl -H 'User-Agent: Googlebot' '%s/?simhost=<domain>&u=/'\n", base)
	go func() {
		if err := http.Serve(ln, w.Web); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *serveOnly {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		return
	}

	// Crawl today's SERPs over the real socket.
	det := crawler.NewDetector(simweb.NewHTTPFetcher(base))
	c := crawler.New(det)
	urls := make(map[string]string)
	for _, v := range brands.All() {
		w.Engine.EachSlot(v, func(_, _ int, s *searchsim.Slot) {
			if len(urls) < *maxDom {
				if _, dup := urls[s.Domain]; !dup {
					urls[s.Domain] = s.URL
				}
			}
		})
	}
	fmt.Printf("crawling %d unique result domains over HTTP...\n", len(urls))
	verdicts := c.CheckDomains(urls, simclock.Day(*day))

	type row struct {
		domain string
		v      crawler.Verdict
	}
	var poisoned []row
	for dom, v := range verdicts {
		if v.Cloaked {
			poisoned = append(poisoned, row{dom, v})
		}
	}
	sort.Slice(poisoned, func(i, j int) bool { return poisoned[i].domain < poisoned[j].domain })
	fmt.Printf("\n%d of %d domains are cloaking:\n", len(poisoned), len(urls))
	for _, r := range poisoned {
		truth := "?"
		if spec, ok := w.TruthCampaign(r.v.StoreDomain); ok {
			truth = spec.Name
		}
		fmt.Printf("  %-34s %-16s store=%-30s campaign=%s\n",
			r.domain, r.v.Detector, r.v.StoreDomain, truth)
	}
}
