// Package searchseizure reproduces the measurement study "Search + Seizure:
// The Effectiveness of Interventions on SEO Campaigns" (Wang et al., IMC
// 2014) as a runnable system.
//
// The library simulates the counterfeit-luxury SEO ecosystem — black-hat
// campaigns operating cloaked doorways on compromised sites, storefronts
// with independent order counters, a search engine whose results they
// poison, users clicking through and buying, search-engine penalties and
// brand-holder domain seizures — and runs the paper's actual measurement
// pipeline against it: the Dagger and VanGogh crawlers, the storefront
// detector, an L1-regularised campaign classifier, the purchase-pair
// order-volume estimator and the intervention analyses.
//
// The quickest way in:
//
//	study := searchseizure.NewStudy(searchseizure.TestConfig())
//	study.Run()
//	fmt.Println(study.MustExperiment("table1"))
//
// Every table and figure of the paper has an experiment id; see
// Experiments. DESIGN.md documents what the paper measured on the real web
// and what this reproduction substitutes for it.
package searchseizure

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/export"
)

// Config sizes and seeds a study; see the field docs in internal/core.
// Use DefaultConfig (paper scale) or TestConfig (miniature) as a base.
type Config = core.Config

// DefaultConfig is the paper-scale configuration: 16 verticals x 100 terms
// x top-100 results crawled daily over the 2013-11-13..2014-07-15 window,
// full-size campaign infrastructure.
func DefaultConfig() Config { return core.DefaultConfig() }

// TestConfig is a miniature configuration with the same moving parts,
// suitable for tests and quick exploration (runs in seconds).
func TestConfig() Config { return core.TestConfig() }

// BenchConfig is the mid-size configuration the benchmark harness uses: big
// enough that every experiment has signal, small enough to iterate.
func BenchConfig() Config {
	cfg := core.DefaultConfig()
	cfg.Scale = 0.06
	cfg.TermsPerVertical = 10
	cfg.SlotsPerTerm = 50
	cfg.TailCampaigns = 18
	cfg.SeedDocsTarget = 350
	cfg.SupplierRecords = 40000
	return cfg
}

// Study is one end-to-end run: a simulated world plus the measurement
// dataset collected from it.
type Study struct {
	World *core.World
	Data  *core.Dataset
}

// NewStudy builds the world for a configuration. Building trains the
// campaign classifier, deploys all infrastructure and mounts the web, but
// does not advance time; call Run.
func NewStudy(cfg Config) *Study {
	return &Study{World: core.NewWorld(cfg)}
}

// Run executes the full longitudinal study (idempotent: subsequent calls
// return the same dataset).
func (s *Study) Run() *core.Dataset {
	if s.Data == nil {
		s.Data = s.World.Run()
	}
	return s.Data
}

// Experiment renders one of the paper's tables or figures by id (see
// Experiments for the registry). It runs the study first if needed.
func (s *Study) Experiment(id string) (string, error) {
	e, ok := experiments.ByID(id)
	if !ok {
		return "", fmt.Errorf("searchseizure: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	return e.Run(s.Run()).String(), nil
}

// MustExperiment is Experiment, panicking on unknown ids.
func (s *Study) MustExperiment(id string) string {
	out, err := s.Experiment(id)
	if err != nil {
		panic(err)
	}
	return out
}

// Export writes the study's dataset artifacts (summary.json plus the
// per-vertical and per-campaign series CSVs) into dir, running the study
// first if needed.
func (s *Study) Export(dir string) error {
	return export.Dir(dir, s.Run())
}

// ExperimentInfo describes one reproducible table/figure.
type ExperimentInfo struct {
	ID    string
	Title string
}

// Experiments lists the reproducible tables and figures in paper order.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range experiments.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	return out
}

// ExperimentIDs returns the sorted experiment ids.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range experiments.All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// Ablations lists the design-choice studies. Unlike Experiments these build
// and run their own (alternate) worlds from a base config.
func Ablations() []ExperimentInfo {
	var out []ExperimentInfo
	for _, a := range experiments.Ablations() {
		out = append(out, ExperimentInfo{ID: a.ID, Title: a.Title})
	}
	return out
}

// RunAblation executes one ablation by id against a base configuration.
func RunAblation(id string, base Config) (string, error) {
	a, ok := experiments.AblationByID(id)
	if !ok {
		return "", fmt.Errorf("searchseizure: unknown ablation %q", id)
	}
	return a.Run(base).String(), nil
}
