// Package searchseizure reproduces the measurement study "Search + Seizure:
// The Effectiveness of Interventions on SEO Campaigns" (Wang et al., IMC
// 2014) as a runnable system.
//
// The library simulates the counterfeit-luxury SEO ecosystem — black-hat
// campaigns operating cloaked doorways on compromised sites, storefronts
// with independent order counters, a search engine whose results they
// poison, users clicking through and buying, search-engine penalties and
// brand-holder domain seizures — and runs the paper's actual measurement
// pipeline against it: the Dagger and VanGogh crawlers, the storefront
// detector, an L1-regularised campaign classifier, the purchase-pair
// order-volume estimator and the intervention analyses.
//
// The quickest way in:
//
//	study, err := searchseizure.New(searchseizure.TestConfig())
//	if err != nil { ... }
//	data, err := study.RunContext(ctx)
//	tbl, _ := study.Experiment("table1")
//	fmt.Println(tbl)
//
// Every table and figure of the paper has an experiment id; see
// Experiments. Options wire in cross-cutting concerns: WithTelemetry
// attaches a metrics/tracing registry, WithFaults selects a fault-injection
// profile, WithLogger gets lifecycle logging. DESIGN.md documents what the
// paper measured on the real web and what this reproduction substitutes for
// it, including the observability contract.
package searchseizure

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/faults"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// Config sizes and seeds a study; see the field docs in internal/core.
// Use DefaultConfig (paper scale) or TestConfig (miniature) as a base.
type Config = core.Config

// Telemetry is the study's observability sink: lock-cheap counters, gauges,
// fixed-bucket histograms and stage spans, exposed as Prometheus text,
// expvar-style JSON, or programmatic snapshots. A nil *Telemetry is the
// no-op sink. See internal/telemetry for the full surface.
type Telemetry = telemetry.Registry

// NewTelemetry returns a live telemetry registry to pass to WithTelemetry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// Table is an experiment result; it renders as text via String and as
// {id, title, text} via JSON marshalling.
type Table = export.Table

// DefaultConfig is the paper-scale configuration: 16 verticals x 100 terms
// x top-100 results crawled daily over the 2013-11-13..2014-07-15 window,
// full-size campaign infrastructure.
func DefaultConfig() Config { return core.DefaultConfig() }

// TestConfig is a miniature configuration with the same moving parts,
// suitable for tests and quick exploration (runs in seconds).
func TestConfig() Config { return core.TestConfig() }

// BenchConfig is the mid-size configuration the benchmark harness uses: big
// enough that every experiment has signal, small enough to iterate.
func BenchConfig() Config {
	cfg := core.DefaultConfig()
	cfg.Scale = 0.06
	cfg.TermsPerVertical = 10
	cfg.SlotsPerTerm = 50
	cfg.TailCampaigns = 18
	cfg.SeedDocsTarget = 350
	cfg.SupplierRecords = 40000
	return cfg
}

// Option configures New beyond the base Config. Options apply in order;
// later options win where they overlap.
type Option func(*studyOptions) error

type studyOptions struct {
	telemetry *telemetry.Registry
	telSet    bool
	profile   string
	profSet   bool
	logger    *log.Logger
	ckptDir   string
	ckptEvery int
	ckptSet   bool
}

// WithTelemetry attaches a telemetry registry to the study: the day
// pipeline, crawler, fault layer and classifier all record their runtime
// metrics and stage spans into it. Telemetry is observational only — a
// study produces a bit-identical Dataset.Fingerprint with or without it.
// Passing nil selects the no-op sink (the default).
func WithTelemetry(sink *Telemetry) Option {
	return func(o *studyOptions) error {
		o.telemetry = sink
		o.telSet = true
		return nil
	}
}

// WithFaults selects a deterministic fault-injection profile by name
// ("off", "moderate", "severe" — see internal/faults). It overrides
// cfg.Faults; unknown names surface as an error from New.
func WithFaults(profile string) Option {
	return func(o *studyOptions) error {
		if _, err := faults.Profile(profile); err != nil {
			return err
		}
		o.profile = profile
		o.profSet = true
		return nil
	}
}

// WithLogger directs study lifecycle logging (world build, run start,
// completion, cancellation) to l. nil (the default) logs nothing.
func WithLogger(l *log.Logger) Option {
	return func(o *studyOptions) error {
		o.logger = l
		return nil
	}
}

// WithCheckpoint enables durable day-boundary snapshots under dir: every
// `every` days (and at completion) the study's full resumable state is
// written atomically, and a new Study over the same dir auto-recovers from
// the newest good snapshot before its first RunContext, converging to the
// bit-identical fingerprint of an uninterrupted run. every <= 0 means every
// day. Corrupt or torn snapshots are detected by checksum and skipped in
// favour of the previous one. The snapshot is bound to the simulation-
// shaping config (a hash mismatch surfaces as an error from RunContext);
// telemetry and worker counts may differ across resume.
func WithCheckpoint(dir string, every int) Option {
	return func(o *studyOptions) error {
		if dir == "" {
			return errors.New("checkpoint directory must be non-empty")
		}
		o.ckptDir = dir
		o.ckptEvery = every
		o.ckptSet = true
		return nil
	}
}

// Study is one end-to-end run: a simulated world plus the measurement
// dataset collected from it.
type Study struct {
	World *core.World
	Data  *core.Dataset

	log       *log.Logger
	ckpt      *checkpoint.Manager
	recovered bool
}

// New builds the world for a configuration. Building trains the campaign
// classifier, deploys all infrastructure and mounts the web, but does not
// advance time; call RunContext (or Run). Options fold into the config
// before the world is built.
func New(cfg Config, opts ...Option) (*Study, error) {
	var o studyOptions
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&o); err != nil {
			return nil, fmt.Errorf("searchseizure: %w", err)
		}
	}
	if o.telSet {
		cfg.Telemetry = o.telemetry
	}
	if o.profSet {
		fc, err := faults.Profile(o.profile)
		if err != nil {
			return nil, fmt.Errorf("searchseizure: %w", err)
		}
		cfg.Faults = fc
	}
	s := &Study{log: o.logger}
	if s.log != nil {
		s.log.Printf("searchseizure: building world (seed=%d scale=%g faults=%v telemetry=%v)",
			cfg.Seed, cfg.Scale, cfg.Faults.Enabled(), cfg.Telemetry != nil)
	}
	s.World = core.NewWorld(cfg)
	if s.log != nil {
		s.log.Printf("searchseizure: world ready (%d stores, %d sim days, classifier CV accuracy %.3f)",
			len(s.World.Stores), s.World.Sim.Days(), s.World.CVAccuracy)
	}
	if o.ckptSet {
		mgr, err := checkpoint.NewManager(checkpoint.Options{
			Dir:       o.ckptDir,
			Every:     o.ckptEvery,
			Telemetry: cfg.Telemetry,
		})
		if err != nil {
			return nil, fmt.Errorf("searchseizure: %w", err)
		}
		s.ckpt = mgr
	}
	return s, nil
}

// NewStudy builds the world for a configuration.
//
// Deprecated: use New, which reports option errors and supports
// WithTelemetry/WithFaults/WithLogger. NewStudy remains as a shim for
// existing callers and cannot fail (it passes no options).
func NewStudy(cfg Config) *Study {
	s, err := New(cfg)
	if err != nil {
		// Unreachable: New without options only fails on option errors.
		panic(err)
	}
	return s
}

// RunContext executes the full longitudinal study under ctx. Cancellation
// is cooperative and day-granular: the pipeline checks ctx between days,
// never mid-day, so on cancellation RunContext returns a coherent partial
// dataset — every day in [0, Dataset.DaysRun) fully committed, and (under
// fault injection) the coverage mask intact — alongside ctx's error. A
// subsequent RunContext call resumes from the first unrun day; the dataset
// is cached only once a run completes, so a finished study's calls are
// idempotent.
func (s *Study) RunContext(ctx context.Context) (*core.Dataset, error) {
	if s.Data != nil {
		return s.Data, nil
	}
	if err := s.attachCheckpoints(); err != nil {
		return nil, err
	}
	if s.log != nil {
		s.log.Printf("searchseizure: run starting (%d days)", s.World.Sim.Days())
	}
	data, err := s.World.RunContext(ctx)
	if err != nil {
		if s.log != nil {
			s.log.Printf("searchseizure: run cancelled after %d/%d days: %v",
				data.DaysRun, s.World.Sim.Days(), err)
		}
		return data, err
	}
	if s.log != nil {
		s.log.Printf("searchseizure: run complete (%d days, %d PSRs)", data.DaysRun, data.TotalPSRs())
	}
	s.Data = data
	return data, nil
}

// Recover performs checkpoint auto-recovery now instead of lazily inside
// the first RunContext: the newest good snapshot (if any) is restored and
// the save cadence is hooked into the day pipeline. Idempotent, and a
// no-op without WithCheckpoint. Servers use it to declare readiness only
// after recovery has completed.
func (s *Study) Recover() error { return s.attachCheckpoints() }

// attachCheckpoints recovers from the newest good snapshot (once, before
// the first day runs) and hooks the save cadence into the day pipeline.
// A checkpoint-less study is a no-op here.
func (s *Study) attachCheckpoints() error {
	if s.ckpt == nil || s.recovered {
		return nil
	}
	s.recovered = true
	w, mgr := s.World, s.ckpt
	snap, err := mgr.Load()
	switch {
	case errors.Is(err, checkpoint.ErrNoCheckpoint):
		// Fresh directory: start from day 0.
	case err != nil:
		// Every file present was damaged. The damage is counted in
		// telemetry and the study restarts from day 0 — losing progress,
		// never correctness.
		if s.log != nil {
			s.log.Printf("searchseizure: no loadable checkpoint, starting fresh: %v", err)
		}
	default:
		if rerr := w.RestoreSnapshot(snap); rerr != nil {
			return fmt.Errorf("searchseizure: checkpoint restore: %w", rerr)
		}
		if s.log != nil {
			s.log.Printf("searchseizure: resumed from checkpoint at day %d/%d",
				snap.NextDay, w.Sim.Days())
		}
	}
	prev := w.OnDayEnd
	w.OnDayEnd = func(d simclock.Day) {
		if prev != nil {
			prev(d)
		}
		if !mgr.Due(int(d)) && int(d)+1 != w.Sim.Days() {
			return
		}
		if serr := mgr.Save(w.Snapshot()); serr != nil && s.log != nil {
			s.log.Printf("searchseizure: checkpoint save after day %d failed: %v", d, serr)
		}
	}
	return nil
}

// Checkpoint writes a snapshot immediately, regardless of cadence. The
// study must be quiescent — before RunContext, or after it returned (a
// cancelled RunContext stops on a day boundary, so a cancel-then-Checkpoint
// shutdown sequence is always coherent). Returns an error if the study was
// built without WithCheckpoint.
func (s *Study) Checkpoint() error {
	if s.ckpt == nil {
		return errors.New("searchseizure: study has no checkpoint directory (use WithCheckpoint)")
	}
	return s.ckpt.Save(s.World.Snapshot())
}

// Run executes the full longitudinal study (idempotent: subsequent calls
// return the same dataset).
//
// Deprecated: use RunContext, which supports cancellation and partial
// results. Run remains as an uncancellable shim.
func (s *Study) Run() *core.Dataset {
	d, _ := s.RunContext(context.Background())
	return d
}

// ErrUnknownExperiment is returned (wrapped) by Experiment when no
// experiment has the requested id; match it with errors.Is and recover the
// valid ids from ListExperiments.
var ErrUnknownExperiment = errors.New("unknown experiment")

// Experiment computes one of the paper's tables or figures by id (see
// ListExperiments for the registry), running the study first if needed.
// The returned Table renders as text via String and as JSON via Marshal;
// callers that only ever printed the result keep working, callers that
// want structure no longer have to parse text. An id outside the registry
// returns an error wrapping ErrUnknownExperiment — callers no longer have
// to guess ids or parse the message.
func (s *Study) Experiment(id string) (Table, error) {
	e, ok := experiments.ByID(id)
	if !ok {
		return Table{}, fmt.Errorf("searchseizure: %w %q (have %v)", ErrUnknownExperiment, id, ExperimentIDs())
	}
	return Table{ID: e.ID, Title: e.Title, Result: e.Run(s.Run())}, nil
}

// ListExperiments lists the tables and figures this study can compute, in
// paper order. It is the per-study spelling of the package-level
// Experiments registry — the ids are valid inputs to Experiment.
func (s *Study) ListExperiments() []ExperimentInfo { return Experiments() }

// MustExperiment is Experiment, panicking on unknown ids. It is intended
// for tests and examples, where an unknown id is a programming error;
// production callers should use Experiment and handle the error.
func (s *Study) MustExperiment(id string) Table {
	out, err := s.Experiment(id)
	if err != nil {
		panic(err)
	}
	return out
}

// Export writes the study's dataset artifacts (summary.json plus the
// per-vertical and per-campaign series CSVs) into dir, running the study
// first if needed.
func (s *Study) Export(dir string) error {
	return export.Dir(dir, s.Run())
}

// ExperimentInfo describes one reproducible table/figure.
type ExperimentInfo struct {
	ID    string
	Title string
}

// Experiments lists the reproducible tables and figures in paper order.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range experiments.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	return out
}

// ExperimentIDs returns the sorted experiment ids.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range experiments.All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// Ablations lists the design-choice studies. Unlike Experiments these build
// and run their own (alternate) worlds from a base config.
func Ablations() []ExperimentInfo {
	var out []ExperimentInfo
	for _, a := range experiments.Ablations() {
		out = append(out, ExperimentInfo{ID: a.ID, Title: a.Title})
	}
	return out
}

// RunAblation executes one ablation by id against a base configuration.
func RunAblation(id string, base Config) (Table, error) {
	a, ok := experiments.AblationByID(id)
	if !ok {
		return Table{}, fmt.Errorf("searchseizure: unknown ablation %q", id)
	}
	return Table{ID: a.ID, Title: a.Title, Result: a.Run(base)}, nil
}
