package searchseizure

import (
	"fmt"
	"strings"

	"repro/internal/faults"
)

// StudySpec is the serializable launch description shared by every way a
// study can start: the HTTP service plane (POST /v1/studies), the crawlerd
// command line, and programmatic callers via NewFromSpec. One validation
// path means a spec rejected over HTTP is rejected identically from the
// CLI — the two cannot drift.
//
// The zero value is a valid spec: the "test" preset at its defaults, no
// faults, full window. Every field is optional; zero means "preset
// default". Validation failures carry field-level machine-readable codes
// (see FieldError) so API clients can map them onto forms.
type StudySpec struct {
	// Preset selects the base configuration: "test" (miniature, the
	// default), "bench" (mid-size) or "default" (paper scale).
	Preset string `json:"preset,omitempty"`
	// Seed drives every random choice; the same spec reproduces the study
	// bit-for-bit. 0 selects the preset default (1). Negative is invalid —
	// the wire format is signed so a bad client-side cast surfaces as a
	// field error instead of a silently huge seed.
	Seed int64 `json:"seed,omitempty"`
	// Faults names the fault-injection profile ("off", "moderate",
	// "severe"). "" means "off".
	Faults string `json:"faults,omitempty"`
	// Days caps how many simulation days run (Config.MaxDays); 0 runs the
	// full window. The cap is a driving knob: every day that runs is
	// bit-identical to the same day of an uncapped study.
	Days int `json:"days,omitempty"`
	// Scale overrides the preset's infrastructure multiplier when > 0.
	Scale float64 `json:"scale,omitempty"`
	// TermsPerVertical and SlotsPerTerm override the crawl size when > 0.
	TermsPerVertical int `json:"terms_per_vertical,omitempty"`
	SlotsPerTerm     int `json:"slots_per_term,omitempty"`
	// ExtendedTail, when set, overrides whether the simulation runs past
	// the crawl window (the Figure 5 tail). nil keeps the preset's choice.
	ExtendedTail *bool `json:"extended_tail,omitempty"`
	// CheckpointEvery is the snapshot cadence in days for launchers that
	// attach a checkpoint directory; 0 means every day. The directory
	// itself is the launcher's concern (the service assigns one per study),
	// so it is not part of the spec.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// Stable machine-readable codes carried by FieldError.
const (
	// CodeNegative: a count or seed that must be >= 0 is negative.
	CodeNegative = "negative"
	// CodeUnknownProfile: Faults names no known fault profile.
	CodeUnknownProfile = "unknown_profile"
	// CodeUnknownPreset: Preset names no known base configuration.
	CodeUnknownPreset = "unknown_preset"
	// CodeOutOfRange: a numeric field is outside its valid range.
	CodeOutOfRange = "out_of_range"
)

// FieldError locates one invalid StudySpec field. Code is stable and
// machine-readable; Message is for humans.
type FieldError struct {
	Field   string `json:"field"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ValidationError is the typed error Validate returns: every invalid field
// reported at once, in spec field order, so a client can fix a launch
// request in one round trip.
type ValidationError struct {
	Fields []FieldError
}

func (e *ValidationError) Error() string {
	parts := make([]string, 0, len(e.Fields))
	for _, f := range e.Fields {
		parts = append(parts, fmt.Sprintf("%s: %s (%s)", f.Field, f.Message, f.Code))
	}
	return "searchseizure: invalid study spec: " + strings.Join(parts, "; ")
}

// SpecPresets lists the valid Preset names.
func SpecPresets() []string { return []string{"test", "bench", "default"} }

// presetConfig resolves a preset name; "" is "test".
func presetConfig(name string) (Config, bool) {
	switch name {
	case "", "test":
		return TestConfig(), true
	case "bench":
		return BenchConfig(), true
	case "default":
		return DefaultConfig(), true
	}
	return Config{}, false
}

// Validate checks every field and returns nil or a *ValidationError
// carrying one FieldError per problem.
func (s StudySpec) Validate() error {
	var errs []FieldError
	add := func(field, code, msg string) {
		errs = append(errs, FieldError{Field: field, Code: code, Message: msg})
	}
	if _, ok := presetConfig(s.Preset); !ok {
		add("preset", CodeUnknownPreset,
			fmt.Sprintf("unknown preset %q (have %s)", s.Preset, strings.Join(SpecPresets(), ", ")))
	}
	if s.Seed < 0 {
		add("seed", CodeNegative, fmt.Sprintf("seed must be >= 0, got %d", s.Seed))
	}
	if s.Faults != "" {
		if _, err := faults.Profile(s.Faults); err != nil {
			add("faults", CodeUnknownProfile,
				fmt.Sprintf("unknown fault profile %q (have %s)", s.Faults, strings.Join(faults.Profiles(), ", ")))
		}
	}
	if s.Days < 0 {
		add("days", CodeNegative, fmt.Sprintf("days must be >= 0, got %d", s.Days))
	}
	if s.Scale < 0 {
		add("scale", CodeOutOfRange, fmt.Sprintf("scale must be >= 0, got %g", s.Scale))
	}
	if s.TermsPerVertical < 0 {
		add("terms_per_vertical", CodeNegative,
			fmt.Sprintf("terms_per_vertical must be >= 0, got %d", s.TermsPerVertical))
	}
	if s.SlotsPerTerm < 0 {
		add("slots_per_term", CodeNegative,
			fmt.Sprintf("slots_per_term must be >= 0, got %d", s.SlotsPerTerm))
	}
	if s.CheckpointEvery < 0 {
		add("checkpoint_every", CodeNegative,
			fmt.Sprintf("checkpoint_every must be >= 0, got %d", s.CheckpointEvery))
	}
	if errs != nil {
		return &ValidationError{Fields: errs}
	}
	return nil
}

// WithDefaults returns the spec with implicit choices made explicit
// (preset "test", faults "off", seed 1), so a stored or echoed spec says
// what will actually run.
func (s StudySpec) WithDefaults() StudySpec {
	if s.Preset == "" {
		s.Preset = "test"
	}
	if s.Faults == "" {
		s.Faults = "off"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Config validates the spec and resolves it to the concrete study
// configuration: preset base, overrides applied, fault profile folded in.
func (s StudySpec) Config() (Config, error) {
	if err := s.Validate(); err != nil {
		return Config{}, err
	}
	cfg, _ := presetConfig(s.Preset)
	if s.Seed > 0 {
		cfg.Seed = uint64(s.Seed)
	}
	if s.Faults != "" {
		fc, err := faults.Profile(s.Faults)
		if err != nil {
			// Unreachable after Validate; surface it anyway.
			return Config{}, fmt.Errorf("searchseizure: %w", err)
		}
		cfg.Faults = fc
	}
	cfg.MaxDays = s.Days
	if s.Scale > 0 {
		cfg.Scale = s.Scale
	}
	if s.TermsPerVertical > 0 {
		cfg.TermsPerVertical = s.TermsPerVertical
	}
	if s.SlotsPerTerm > 0 {
		cfg.SlotsPerTerm = s.SlotsPerTerm
	}
	if s.ExtendedTail != nil {
		cfg.ExtendedTail = *s.ExtendedTail
	}
	return cfg, nil
}

// NewFromSpec builds a study from a validated spec. Options apply on top
// of the spec-derived config (the service plane passes WithTelemetry and
// WithCheckpoint here); an invalid spec returns the *ValidationError from
// Validate unwrapped, so callers can render field-level diagnostics.
func NewFromSpec(spec StudySpec, opts ...Option) (*Study, error) {
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	return New(cfg, opts...)
}
