package searchseizure

// The benchmark harness regenerates every table and figure of the paper.
// Each benchmark reports the experiment's computation time over a shared
// mid-size study (BenchConfig), and — run with -v or inspected via
// bench_output.txt — logs the rendered rows/series the paper reports.
// BenchmarkFullStudy measures an entire end-to-end run (world build, 245+
// crawl days, all interventions) at test scale.

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

var (
	benchOnce sync.Once
	benchData *core.Dataset
)

func benchDataset(b *testing.B) *core.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		s := NewStudy(BenchConfig())
		benchData = s.Run()
	})
	return benchData
}

// benchExperiment times one experiment's computation and logs its output
// once so bench_output.txt doubles as the reproduced results.
func benchExperiment(b *testing.B, id string) {
	d := benchDataset(b)
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = e.Run(d).String()
	}
	b.StopTimer()
	b.Logf("\n%s", out)
}

func BenchmarkTable1Verticals(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkTable2Campaigns(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkTable3Seizures(b *testing.B)       { benchExperiment(b, "table3") }
func BenchmarkFigure2Attribution(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFigure3Sparklines(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkFigure4OrdersVsPSRs(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFigure5CocoCaseStudy(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFigure6SeizureReaction(b *testing.B) {
	benchExperiment(b, "fig6")
}
func BenchmarkClassifierCV(b *testing.B)        { benchExperiment(b, "classifier") }
func BenchmarkStoreDetection(b *testing.B)      { benchExperiment(b, "storedetect") }
func BenchmarkTermMethodology(b *testing.B)     { benchExperiment(b, "terms") }
func BenchmarkHackedLabelCoverage(b *testing.B) { benchExperiment(b, "hackedlabels") }
func BenchmarkSeizureLifetimes(b *testing.B)    { benchExperiment(b, "seizurelife") }
func BenchmarkSupplierShipments(b *testing.B)   { benchExperiment(b, "supplier") }
func BenchmarkTransactionProbes(b *testing.B)   { benchExperiment(b, "transactions") }
func BenchmarkCnCInfiltration(b *testing.B)     { benchExperiment(b, "cnc") }

// ablationConfig is small: each ablation iteration builds and runs one or
// two complete worlds.
func ablationConfig() Config {
	cfg := TestConfig()
	cfg.TermsPerVertical = 4
	cfg.SlotsPerTerm = 20
	cfg.ExtendedTail = false
	return cfg
}

func benchAblation(b *testing.B, id string) {
	a, ok := experiments.AblationByID(id)
	if !ok {
		b.Fatalf("unknown ablation %s", id)
	}
	cfg := ablationConfig()
	var out string
	for i := 0; i < b.N; i++ {
		out = a.Run(cfg).String()
	}
	b.Logf("\n%s", out)
}

func BenchmarkAblationNoRender(b *testing.B)        { benchAblation(b, "abl-render") }
func BenchmarkAblationRegularizers(b *testing.B)    { benchAblation(b, "abl-l1") }
func BenchmarkAblationLabelPolicy(b *testing.B)     { benchAblation(b, "abl-rootlabel") }
func BenchmarkAblationReactiveSeizure(b *testing.B) { benchAblation(b, "abl-reactive") }
func BenchmarkAblationPayment(b *testing.B)         { benchAblation(b, "abl-payment") }

// BenchmarkFullStudy measures a complete end-to-end run: world build,
// every simulated day (crawl, interventions, demand), finalisation.
func BenchmarkFullStudy(b *testing.B) {
	cfg := ablationConfig()
	for i := 0; i < b.N; i++ {
		s := NewStudy(cfg)
		d := s.Run()
		if d.TotalPSRs() == 0 {
			b.Fatal("study produced no PSRs")
		}
	}
}

// BenchmarkSimulatedDay measures one day of the world advancing under full
// observation (the study's steady-state unit of work) on a single observe
// worker — the serial baseline for BenchmarkSimulatedDayParallel.
func BenchmarkSimulatedDay(b *testing.B) {
	cfg := ablationConfig()
	cfg.ObserveWorkers = 1
	s := NewStudy(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.World.RunDay(0)
	}
}

// BenchmarkSimulatedDayParallel runs the same day with the observe phase
// fanned out across every core. The serial/parallel ratio is the day
// pipeline's speedup; on a single-core machine the two should be equal
// (the one-worker path runs inline, no goroutines).
func BenchmarkSimulatedDayParallel(b *testing.B) {
	cfg := ablationConfig()
	cfg.ObserveWorkers = runtime.NumCPU()
	cfg.CrawlWorkers = runtime.NumCPU()
	s := NewStudy(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.World.RunDay(0)
	}
}

// BenchmarkSimulatedDayTelemetry is BenchmarkSimulatedDayParallel with a
// live telemetry registry attached: the delta between the two is the whole
// cost of the observability layer on the hot path (atomic counter bumps,
// span clock reads, pool utilisation accounting). The contract — asserted
// in CI via cmd/benchjson — is that it stays under 2%.
func BenchmarkSimulatedDayTelemetry(b *testing.B) {
	cfg := ablationConfig()
	cfg.ObserveWorkers = runtime.NumCPU()
	cfg.CrawlWorkers = runtime.NumCPU()
	cfg.Telemetry = telemetry.New()
	s := NewStudy(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.World.RunDay(0)
	}
}

// BenchmarkSimulatedDayFaultsOff is BenchmarkSimulatedDayParallel with the
// fault-injection layer explicitly disabled (the zero faults.Config): the
// delta against BenchmarkSimulatedDayParallel is the cost of having the
// fault hook in the codebase, which must be nil — the disabled path builds
// no plan, wraps no fetcher, and allocates nothing per request.
func BenchmarkSimulatedDayFaultsOff(b *testing.B) {
	cfg := ablationConfig()
	cfg.ObserveWorkers = runtime.NumCPU()
	cfg.CrawlWorkers = runtime.NumCPU()
	cfg.Faults = faults.Config{}
	s := NewStudy(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.World.RunDay(0)
	}
}

// BenchmarkSimulatedDayFaultsModerate is the contrast: the same day under
// the moderate injection profile, paying for the per-request hash rolls,
// retries and breaker accounting. It bounds what a robustness study costs.
func BenchmarkSimulatedDayFaultsModerate(b *testing.B) {
	cfg := ablationConfig()
	cfg.ObserveWorkers = runtime.NumCPU()
	cfg.CrawlWorkers = runtime.NumCPU()
	cfg.Faults, _ = faults.Profile("moderate")
	s := NewStudy(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.World.RunDay(0)
	}
}
