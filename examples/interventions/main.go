// Interventions: the §5.3 dynamic in miniature. Runs a small study, then
// walks through what the crawl observed for the PHP?P= campaign's
// Abercrombie UK store: rising order numbers, the domain seizure, the
// campaign re-pointing its doorways to a backup within a day, and orders
// resuming — the asymmetry that §5.3.2 concludes makes seizures, as
// currently practised, ineffective.
//
//	go run ./examples/interventions
package main

import (
	"context"
	"fmt"
	"log"

	searchseizure "repro"
)

func main() {
	cfg := searchseizure.TestConfig()
	fmt.Println("running a miniature study (this exercises the full pipeline)...")
	study, err := searchseizure.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	data, err := study.RunContext(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nseizure activity observed through crawled PSRs: %d seizures, %d campaign reactions\n",
		len(data.Seizures), len(data.Reactions))

	fmt.Println("\n" + study.MustExperiment("fig6").String())
	fmt.Println(study.MustExperiment("seizurelife"))
	fmt.Println(study.MustExperiment("hackedlabels"))

	fmt.Println("takeaway (as in the paper): both intervention families work where applied,")
	fmt.Println("but neither is reactive or comprehensive enough to outpace campaigns that")
	fmt.Println("hold pre-registered backup domains and re-point doorways within days.")
}
