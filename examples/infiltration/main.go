// Infiltration: the §3.1.2 technique. Campaign doorway kits poll a C&C
// gate for the storefront roster they should forward traffic to; the study
// recovered each kit's gate credential from its source code and polled the
// same endpoint, enumerating a campaign's stores independently of search.
// This example infiltrates BIGLOVE's C&C, watches the directive change as
// a seizure lands and the campaign re-points to a backup, and contrasts
// the roster with what a search crawl alone can see.
//
//	go run ./examples/infiltration
package main

import (
	"fmt"

	"repro/internal/cnc"
	"repro/internal/core"
	"repro/internal/simclock"
)

func main() {
	cfg := core.TestConfig()
	cfg.ExtendedTail = false
	fmt.Println("building the world and running the study (the C&C gates are live throughout)...")
	w := core.NewWorld(cfg)
	d := w.Run()

	const target = "biglove"
	fmt.Printf("\ntarget campaign: BIGLOVE; C&C host %s, gate token %s (recovered from kit source)\n",
		cnc.Domain(target), cnc.GateToken(target))

	// Poll the directive across the study and print roster transitions.
	var prev map[string]bool
	for day := simclock.Day(0); int(day) < d.StudyDays; day += 20 {
		dir, err := cnc.Infiltrate(w.Web, target, day)
		if err != nil {
			fmt.Printf("day %3d: gate error: %v\n", day, err)
			continue
		}
		cur := make(map[string]bool)
		for _, dom := range dir.Domains() {
			cur[dom] = true
		}
		var gone, fresh []string
		for dom := range prev {
			if !cur[dom] {
				gone = append(gone, dom)
			}
		}
		for dom := range cur {
			if prev != nil && !prev[dom] {
				fresh = append(fresh, dom)
			}
		}
		fmt.Printf("day %3d: %2d live stores, %d brands", day, len(dir.Entries), len(dir.Brands()))
		if len(gone) > 0 {
			fmt.Printf("; dropped %v (seized or rotated)", gone)
		}
		if len(fresh) > 0 {
			fmt.Printf("; added %v", fresh)
		}
		fmt.Println()
		prev = cur
	}

	// Compare with the crawl's view.
	union := make(map[string]bool)
	for day := simclock.Day(0); int(day) < d.StudyDays; day += 10 {
		if dir, err := cnc.Infiltrate(w.Web, target, day); err == nil {
			for _, dom := range dir.Domains() {
				union[dom] = true
			}
		}
	}
	var crawled int
	for dom := range union {
		if _, ok := d.StoreFirstSeen[dom]; ok {
			crawled++
		}
	}
	fmt.Printf("\nacross the study the directive named %d distinct store domains;\n", len(union))
	fmt.Printf("the search crawl independently observed %d of them (%.0f%%).\n",
		crawled, 100*float64(crawled)/float64(max(1, len(union))))
	fmt.Println("\nthe paper's point: crawls see only the SEO'ed subset — infiltration sees the business.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
