// Cloaking: the §3.1.1 story, over a real HTTP socket. A redirect-cloaking
// doorway and an iframe-cloaking doorway are served on localhost; the
// example fetches them as Googlebot, as a search click-through, and as a
// direct visitor, then shows why semantic diffing (Dagger) catches the
// first but only a rendering crawler (VanGogh) catches the second.
//
//	go run ./examples/cloaking
package main

import (
	"fmt"
	"net/http/httptest"
	"strings"

	"repro/internal/campaign"
	"repro/internal/crawler"
	"repro/internal/htmlgen"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/simweb"
	"repro/internal/store"
)

func main() {
	r := rng.New(2014)
	specs := campaign.Roster(simclock.StudyWindow())
	deps := campaign.DeployAll(r.Sub("deploy"), specs, 0.01)
	gen := htmlgen.New(r)
	web := simweb.NewWeb()

	find := func(name string) *campaign.Deployment {
		for _, d := range deps {
			if d.Spec.Name == name {
				return d
			}
		}
		panic("missing " + name)
	}
	mount := func(dep *campaign.Deployment) (doorway, storeDom string) {
		st := store.New(dep.Stores[0], r.Sub("store"), 245)
		storeDom = dep.Stores[0].Domains[0]
		web.Register(storeDom, &simweb.StoreSite{Store: st, Gen: gen, Window: simclock.StudyWindow()})
		dw := dep.Doorways[0]
		web.Register(dw.Domain, &simweb.DoorwaySite{
			Doorway: dw, Gen: gen,
			Terms:   []string{"cheap luxury goods", "luxury outlet online"},
			Resolve: func(simclock.Day) string { return "http://" + storeDom + "/" },
		})
		return dw.Domain, storeDom
	}
	redirDoor, redirStore := mount(find("KEY"))       // redirect cloaking
	iframeDoor, iframeStore := mount(find("MOONKIS")) // iframe cloaking

	srv := httptest.NewServer(web)
	defer srv.Close()
	fmt.Printf("simulated web on %s\n\n", srv.URL)
	f := simweb.NewHTTPFetcher(srv.URL)

	show := func(title, url, ua, ref string) simweb.Response {
		resp := f.Fetch(simweb.Request{URL: url, UserAgent: ua, Referrer: ref})
		snippet := resp.Body
		if i := strings.Index(snippet, "\n"); i > 0 {
			snippet = snippet[:i]
		}
		if len(snippet) > 60 {
			snippet = snippet[:60]
		}
		fmt.Printf("  %-24s -> %d  %s\n", title, resp.Status, firstNonEmpty(resp.Location, snippet))
		return resp
	}

	fmt.Printf("[redirect cloaking] doorway %s (store %s)\n", redirDoor, redirStore)
	show("as Googlebot", "http://"+redirDoor+"/", simweb.CrawlerUA, "")
	show("as search click-through", "http://"+redirDoor+"/", simweb.BrowserUA, simweb.SearchReferrer)
	show("as direct visitor", "http://"+redirDoor+"/", simweb.BrowserUA, "")

	fmt.Printf("\n[iframe cloaking] doorway %s (store %s)\n", iframeDoor, iframeStore)
	bot := show("as Googlebot", "http://"+iframeDoor+"/", simweb.CrawlerUA, "")
	user := show("as search click-through", "http://"+iframeDoor+"/", simweb.BrowserUA, simweb.SearchReferrer)
	fmt.Printf("  identical bodies for bot and user: %v (nothing for a diff to see)\n", bot.Body == user.Body)

	fmt.Println("\nrunning the detectors over HTTP:")
	full := crawler.NewDetector(f)
	diffOnly := crawler.NewDetector(f)
	diffOnly.Opts.EnableVanGogh = false
	diffOnly.Opts.RenderOnDagger = false

	report := func(name, url string) {
		v1 := diffOnly.CheckURL(url, 0)
		v2 := full.CheckURL(url, 0)
		fmt.Printf("  %-18s diff-only: %-38s with rendering: %s\n", name, v1, v2)
	}
	report("redirect doorway", "http://"+redirDoor+"/")
	report("iframe doorway", "http://"+iframeDoor+"/")

	fmt.Println("\nthe iframe doorway is invisible to diff-only detection — the paper's case for rendering crawlers at scale.")
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return "Location: " + a
	}
	return b
}
