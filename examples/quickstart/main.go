// Quickstart: build a miniature world, run the full study, and print the
// headline results — Table 1, the attribution split, and the intervention
// summary. Everything goes through the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	searchseizure "repro"
)

func main() {
	cfg := searchseizure.TestConfig()
	fmt.Println("Search + Seizure quickstart")
	fmt.Printf("building a miniature ecosystem (scale %.2f, %d terms x %d results per vertical)...\n",
		cfg.Scale, cfg.TermsPerVertical, cfg.SlotsPerTerm)

	start := time.Now()
	study := searchseizure.NewStudy(cfg)
	fmt.Printf("world ready (%v): 52 named campaigns + %d-campaign unlabeled tail\n",
		time.Since(start).Round(time.Millisecond), cfg.TailCampaigns)
	fmt.Printf("campaign classifier trained on %d seed pages: 10-fold CV accuracy %.1f%%\n",
		len(study.World.SeedDocs), 100*study.World.CVAccuracy)

	fmt.Println("\nrunning the eight-month crawl (plus the Figure-5 tail)...")
	start = time.Now()
	data := study.Run()
	fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Println(study.MustExperiment("table1"))

	fmt.Printf("attributed to the 52 known campaigns: %.0f%% of PSR observations (paper: 58%%)\n",
		100*data.AttributedShare())
	fmt.Printf("observed domain seizures: %d; campaign reactions: %d\n\n",
		len(data.Seizures), len(data.Reactions))

	fmt.Println(study.MustExperiment("fig3"))
	fmt.Println("next: go run ./cmd/experiments -list   (every table and figure by id)")
}
