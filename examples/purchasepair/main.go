// Purchasepair: the §4.3.1 technique in isolation, with known ground
// truth. A single storefront receives a scripted customer order flow; the
// sampler creates one test order a week and reads the order numbers; the
// example compares the purchase-pair estimate with what the store really
// booked — including the deliberate upper-bound bias the paper documents.
//
//	go run ./examples/purchasepair
package main

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/htmlgen"
	"repro/internal/metrics"
	"repro/internal/purchase"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/simweb"
	"repro/internal/store"
)

func main() {
	const days = 120
	r := rng.New(7)
	specs := campaign.Roster(simclock.StudyWindow())
	deps := campaign.DeployAll(r.Sub("deploy"), specs, 0.01)
	var dep *campaign.Deployment
	for _, d := range deps {
		if d.Spec.Name == "VERA" {
			dep = d
		}
	}
	gen := htmlgen.New(r)
	st := store.New(dep.Stores[0], r.Sub("store"), days)
	web := simweb.NewWeb()
	dom := dep.Stores[0].Domains[0]
	web.Register(dom, &simweb.StoreSite{Store: st, Gen: gen, Window: simclock.StudyWindow()})

	fmt.Printf("store %s on %s; starting order counter: %d\n\n",
		st.ID(), dom, st.NextOrderNumber())

	// Scripted ground truth: a ramp, a plateau, and a slump.
	truth := func(day int) float64 {
		switch {
		case day < 30:
			return float64(day) / 3 // ramp to 10/day
		case day < 80:
			return 10
		default:
			return 2.5
		}
	}

	sampler := purchase.NewSampler(web)
	targets := []purchase.Target{{
		StoreID: st.ID(), CampaignKey: "vera",
		Domain: func(simclock.Day) string { return dom },
	}}
	for day := 0; day < days; day++ {
		sampler.Visit(simclock.Day(day), targets)
		st.RecordDay(simclock.Day(day), truth(day)*151, truth(day)*151*5.6, truth(day), nil)
	}

	series := sampler.Series(st.ID())
	fmt.Printf("weekly samples collected: %d (test orders created: %d)\n", len(series.Samples), sampler.Created)
	for _, s := range series.Samples[:5] {
		fmt.Printf("  day %3d: order #%d\n", s.Day, s.OrderNo)
	}
	fmt.Println("  ...")

	est := series.Rates(days)
	var truthSeries metrics.Series = make([]float64, days)
	for day := 0; day < days; day++ {
		truthSeries[day] = truth(day)
	}
	fmt.Printf("\n                 %-14s %s\n", "", "day 0 ......................... day 119")
	fmt.Printf("ground truth     %6.1f/day max %s\n", truthSeries.Max(), metrics.Spark(truthSeries, 40).Glyphs)
	fmt.Printf("purchase-pair    %6.1f/day max %s\n", est.Max(), metrics.Spark(est, 40).Glyphs)

	var totalTruth float64
	for day := 0; day < days; day++ {
		totalTruth += truth(day)
	}
	fmt.Printf("\ntotal orders booked:    %.0f\n", totalTruth)
	fmt.Printf("purchase-pair estimate: %d (upper bound: includes our own %d probes and abandoned carts)\n",
		series.TotalDelta(), sampler.Created)
}
